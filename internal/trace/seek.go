package trace

// Seekable is implemented by generators that can jump to an absolute
// correct-path sequence number without producing the instructions in
// between. Sharded runs use it to fast-forward a fresh generator past the
// prefix an earlier shard covers: a seekable source makes that O(1), while
// any other generator is drained instruction by instruction (see Forward).
type Seekable interface {
	Generator
	// Seek positions the generator so its next Next() returns the
	// instruction with sequence number seq. Seeking backwards is allowed.
	Seek(seq uint64)
}

// Seek implements Seekable. A recording is positionally periodic —
// instruction seq is ins[seq mod len] renumbered — so any sequence number
// is reachable in O(1).
func (r *Replay) Seek(seq uint64) {
	r.pos = int(seq % uint64(len(r.ins)))
	r.next = seq
}

// Clone returns an independent Replay over the same recording, rewound to
// the start. The recording itself is shared — it is read-only — so cloning
// a loaded trace for each shard of a parallel run costs no memory.
func (r *Replay) Clone() *Replay {
	return &Replay{name: r.name, ins: r.ins}
}

// Forward advances gen so that its next instruction carries sequence
// number seq: O(1) for Seekable generators, a drain of the intervening
// instructions otherwise. Generators already at or past seq are left
// untouched (stateful generators cannot rewind; callers fast-forwarding a
// fresh generator never need to).
func Forward(gen Generator, seq uint64) {
	if sk, ok := gen.(Seekable); ok {
		sk.Seek(seq)
		return
	}
	if seq == 0 {
		return
	}
	for {
		in := gen.Next()
		if in.Seq+1 >= seq {
			return
		}
	}
}
