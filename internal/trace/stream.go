package trace

import (
	"fmt"

	"smtavf/internal/isa"
)

// Stream adapts a Generator into a replayable instruction source. The
// simulator fetches speculatively and must re-fetch correct-path
// instructions after a pipeline squash (branch misprediction recovery or a
// FLUSH-policy flush), so Stream buffers generated instructions until the
// simulator releases them at commit.
type Stream struct {
	gen    Generator
	buf    []isa.Instruction // buf[i] holds sequence base+i
	base   uint64            // sequence number of buf[0]
	head   uint64            // released low-water mark (base ≤ head)
	cursor uint64            // sequence number the next Next returns
}

// NewStream wraps gen.
func NewStream(gen Generator) *Stream {
	return &Stream{gen: gen}
}

// Name identifies the underlying workload.
func (s *Stream) Name() string { return s.gen.Name() }

// Cursor returns the sequence number the next call to Next will return.
func (s *Stream) Cursor() uint64 { return s.cursor }

// Next returns the next correct-path instruction at the cursor, generating
// it if it has not been produced before, and advances the cursor.
func (s *Stream) Next() isa.Instruction {
	var in isa.Instruction
	s.NextInto(&in)
	return in
}

// NextInto is Next writing into dst in place: the fetch hot path hands the
// pool slot's own instruction record, so delivery is a single struct copy
// with no intermediate value.
func (s *Stream) NextInto(dst *isa.Instruction) {
	if s.cursor >= s.base+uint64(len(s.buf)) {
		s.fill()
	}
	*dst = s.buf[s.cursor-s.base]
	s.cursor++
}

// fill generates forward until the cursor's instruction is buffered.
func (s *Stream) fill() {
	for s.cursor >= s.base+uint64(len(s.buf)) {
		in := s.gen.Next()
		if in.Seq != s.base+uint64(len(s.buf)) {
			panic(fmt.Sprintf("trace: generator %s produced seq %d, want %d",
				s.gen.Name(), in.Seq, s.base+uint64(len(s.buf))))
		}
		s.buf = append(s.buf, in)
	}
}

// Peek returns the instruction at the cursor without consuming it.
func (s *Stream) Peek() isa.Instruction {
	in := s.Next()
	s.cursor--
	return in
}

// PeekPC returns the PC of the instruction at the cursor without consuming
// it — the fetch stage's per-iteration address probe, kept free of the full
// struct copy Peek would make.
func (s *Stream) PeekPC() uint64 {
	if s.cursor >= s.base+uint64(len(s.buf)) {
		s.fill()
	}
	return s.buf[s.cursor-s.base].PC
}

// Rewind moves the cursor back to sequence number seq, so that seq is the
// next instruction delivered. seq must not precede the released low-water
// mark nor exceed the current cursor.
func (s *Stream) Rewind(seq uint64) {
	if seq < s.head {
		panic(fmt.Sprintf("trace: rewind to released seq %d (head %d)", seq, s.head))
	}
	if seq > s.cursor {
		panic(fmt.Sprintf("trace: rewind forward to %d (cursor %d)", seq, s.cursor))
	}
	s.cursor = seq
}

// Release discards buffered instructions with sequence numbers below seq.
// The simulator calls this as instructions commit; a released instruction
// can never be re-fetched.
//
// Releasing is lazy: the low-water mark advances but released entries stay
// in place until the dead prefix outgrows the live tail, when one compaction
// reclaims the lot — amortized O(1) per instruction, where eager shifting
// cost a full-window copy per commit (docs/performance.md).
func (s *Stream) Release(seq uint64) {
	if seq <= s.head {
		return
	}
	if seq > s.cursor {
		panic(fmt.Sprintf("trace: release beyond cursor: %d > %d", seq, s.cursor))
	}
	s.head = seq
	if dead := int(s.head - s.base); dead >= 64 && dead*2 >= len(s.buf) {
		n := copy(s.buf, s.buf[dead:])
		s.buf = s.buf[:n]
		s.base = s.head
	}
}

// Buffered returns the number of instructions currently held for replay.
func (s *Stream) Buffered() int { return len(s.buf) - int(s.head-s.base) }

// Forward advances the stream so that seq is the next instruction
// delivered, releasing everything before it. When the underlying generator
// is Seekable and nothing is buffered, the jump is O(1); otherwise the
// intervening instructions are generated and discarded. Forwarding to or
// behind the current cursor is a no-op (use Rewind to go back).
func (s *Stream) Forward(seq uint64) {
	if seq <= s.cursor {
		return
	}
	if _, ok := s.gen.(Seekable); ok && s.Buffered() == 0 && s.cursor == s.head {
		Forward(s.gen, seq)
		s.buf = s.buf[:0]
		s.base, s.head, s.cursor = seq, seq, seq
		return
	}
	for s.cursor < seq {
		s.Next()
		s.Release(s.cursor)
	}
}
