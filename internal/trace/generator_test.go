package trace

import (
	"testing"

	"smtavf/internal/isa"
)

func testProfile() Profile {
	return Profile{
		Name: "test", LoadFrac: 0.25, StoreFrac: 0.10, BranchFrac: 0.12,
		NopFrac: 0.03, FPFrac: 0.3, MulFrac: 0.05, DivFrac: 0.01,
		DeadFrac: 0.08, WorkingSet: 64 << 10, StrideFrac: 0.7,
		BranchPredictability: 0.9, CallFrac: 0.05, DepDist: 4,
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewSynthetic(testProfile(), 7)
	b := NewSynthetic(testProfile(), 7)
	for i := 0; i < 5000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, x, y)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a := NewSynthetic(testProfile(), 1)
	b := NewSynthetic(testProfile(), 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced %d/1000 identical instructions", same)
	}
}

func TestSequenceNumbers(t *testing.T) {
	g := NewSynthetic(testProfile(), 3)
	for i := uint64(0); i < 10000; i++ {
		if in := g.Next(); in.Seq != i {
			t.Fatalf("instruction %d has Seq %d", i, in.Seq)
		}
	}
}

func TestInstructionMix(t *testing.T) {
	p := testProfile()
	g := NewSynthetic(p, 11)
	const n = 200000
	counts := make(map[isa.Class]int)
	for i := 0; i < n; i++ {
		counts[g.Next().Class]++
	}
	frac := func(cs ...isa.Class) float64 {
		tot := 0
		for _, c := range cs {
			tot += counts[c]
		}
		return float64(tot) / n
	}
	// CTIs appear as block terminators sized from BranchFrac.
	ctis := frac(isa.Branch, isa.Call, isa.Return)
	if ctis < 0.08 || ctis > 0.18 {
		t.Errorf("CTI fraction %.3f, want near %.2f", ctis, p.BranchFrac)
	}
	// Loads/stores/NOPs are drawn per-instruction from the body mix, which
	// excludes terminators — allow proportional slack.
	if got := frac(isa.Load); got < 0.18 || got > 0.30 {
		t.Errorf("load fraction %.3f, want near %.2f", got, p.LoadFrac)
	}
	if got := frac(isa.Store); got < 0.06 || got > 0.14 {
		t.Errorf("store fraction %.3f, want near %.2f", got, p.StoreFrac)
	}
	if got := frac(isa.NOP); got < 0.01 || got > 0.06 {
		t.Errorf("nop fraction %.3f, want near %.2f", got, p.NopFrac)
	}
	if counts[isa.FPALU]+counts[isa.FPMul]+counts[isa.FPDiv] == 0 {
		t.Error("no FP instructions with FPFrac=0.3")
	}
}

func TestPCConsistency(t *testing.T) {
	// The same PC must always carry the same class (static code).
	g := NewSynthetic(testProfile(), 5)
	classAt := make(map[uint64]isa.Class)
	for i := 0; i < 50000; i++ {
		in := g.Next()
		if prev, ok := classAt[in.PC]; ok {
			// Body instructions are drawn per visit, so only check CTIs,
			// whose kind is fixed per block terminator. Calls can degrade
			// to branches at max depth, so only check Branch stability.
			if prev == isa.Branch && in.Class != isa.Branch && in.Class != isa.Call && in.Class != isa.Return {
				t.Fatalf("PC %#x changed from %v to %v", in.PC, prev, in.Class)
			}
			continue
		}
		if in.Class.IsCTI() {
			classAt[in.PC] = in.Class
		}
	}
}

func TestControlFlowContinuity(t *testing.T) {
	// Each instruction must start where the previous one said it would.
	g := NewSynthetic(testProfile(), 9)
	prev := g.Next()
	for i := 1; i < 50000; i++ {
		in := g.Next()
		// Falling off the last block wraps to the first — the one allowed
		// discontinuity.
		if in.PC != prev.NextPC() && in.PC != codeBase {
			t.Fatalf("instruction %d at %#x, want %#x (after %v taken=%v)",
				i, in.PC, prev.NextPC(), prev.Class, prev.Taken)
		}
		prev = in
	}
}

func TestDeadResultsNeverSourced(t *testing.T) {
	g := NewSynthetic(testProfile(), 13)
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.Dead && in.Dest != isa.IntScratch && in.Dest != isa.FPScratch {
			t.Fatalf("dead instruction writes %v", in.Dest)
		}
		if in.Src1 == isa.IntScratch || in.Src1 == isa.FPScratch ||
			in.Src2 == isa.IntScratch || in.Src2 == isa.FPScratch {
			t.Fatalf("instruction sources a scratch register: %+v", in)
		}
	}
}

func TestMemOperandsWellFormed(t *testing.T) {
	p := testProfile()
	g := NewSynthetic(p, 17)
	for i := 0; i < 50000; i++ {
		in := g.Next()
		if !in.Class.IsMem() {
			continue
		}
		if in.Size == 0 || in.Size > 8 {
			t.Fatalf("memory access size %d", in.Size)
		}
		if in.Addr < dataBase {
			t.Fatalf("memory address %#x below data segment", in.Addr)
		}
		if !in.Src1.Valid() {
			t.Fatal("memory op without a base register")
		}
		if in.Class == isa.Store && !in.Src2.Valid() {
			t.Fatal("store without a data source")
		}
	}
}

func TestBranchBiasRoughlyPredictable(t *testing.T) {
	// With predictability 0.95 a last-direction predictor per PC should
	// be right much more often than chance.
	p := testProfile()
	p.BranchPredictability = 0.95
	g := NewSynthetic(p, 19)
	last := make(map[uint64]bool)
	correct, total := 0, 0
	for i := 0; i < 200000; i++ {
		in := g.Next()
		if in.Class != isa.Branch {
			continue
		}
		if prev, ok := last[in.PC]; ok {
			total++
			if prev == in.Taken {
				correct++
			}
		}
		last[in.PC] = in.Taken
	}
	if total == 0 {
		t.Fatal("no repeated branches")
	}
	if rate := float64(correct) / float64(total); rate < 0.75 {
		t.Errorf("last-direction repeat rate %.3f, want > 0.75", rate)
	}
}

func TestCallReturnBalance(t *testing.T) {
	p := testProfile()
	p.CallFrac = 0.15
	g := NewSynthetic(p, 21)
	depth, maxDepth := 0, 0
	for i := 0; i < 100000; i++ {
		in := g.Next()
		switch in.Class {
		case isa.Call:
			if in.Taken {
				depth++
			}
		case isa.Return:
			if in.Taken {
				depth--
			}
		}
		if depth < 0 {
			t.Fatal("return without a matching call")
		}
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	if maxDepth == 0 {
		t.Error("no calls taken with CallFrac=0.15")
	}
	if maxDepth > maxCallDepth {
		t.Errorf("call depth %d exceeds cap %d", maxDepth, maxCallDepth)
	}
}

func TestWorkingSetRespected(t *testing.T) {
	p := testProfile()
	p.HotFrac = 0.5
	p.HotSet = 8 << 10
	g := NewSynthetic(p, 23)
	hot, cold := 0, 0
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if !in.Class.IsMem() {
			continue
		}
		switch {
		case in.Addr >= dataBase && in.Addr < dataBase+p.HotSet:
			hot++
		case in.Addr >= coldBase && in.Addr < coldBase+p.WorkingSet:
			cold++
		default:
			t.Fatalf("address %#x outside both regions", in.Addr)
		}
	}
	if hot == 0 || cold == 0 {
		t.Fatalf("hot=%d cold=%d: expected traffic in both regions", hot, cold)
	}
	ratio := float64(hot) / float64(hot+cold)
	if ratio < 0.35 || ratio > 0.65 {
		t.Errorf("hot fraction %.3f, want near 0.5", ratio)
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := Profile{}.withDefaults()
	if p.Name == "" || p.WorkingSet == 0 || p.Stride == 0 ||
		p.CodeBlocks == 0 || p.MeanBlockLen == 0 || p.DepDist == 0 ||
		p.BranchPredictability == 0 || p.PageLocal == 0 || p.LoadStoreReuse == 0 {
		t.Fatalf("defaults missing: %+v", p)
	}
}

func TestBranchFracSizesBlocks(t *testing.T) {
	p := Profile{BranchFrac: 0.10}.withDefaults()
	if p.MeanBlockLen != 9 {
		t.Fatalf("MeanBlockLen = %d, want 9 for BranchFrac 0.10", p.MeanBlockLen)
	}
}

func TestWrongPathGenerator(t *testing.T) {
	w := NewWrongPath(testProfile(), 31)
	for i := 0; i < 10000; i++ {
		pc := uint64(0x400000 + i*4)
		in := w.Next(pc)
		if in.PC != pc {
			t.Fatalf("wrong-path PC %#x, want %#x", in.PC, pc)
		}
		if in.Class == isa.Branch && in.Taken {
			t.Fatal("wrong-path branches must resolve not-taken")
		}
		if in.Class.IsMem() && in.Addr < dataBase {
			t.Fatalf("wrong-path address %#x below data segment", in.Addr)
		}
	}
}

func TestLoadStoreReuseProducesMatches(t *testing.T) {
	p := testProfile()
	p.LoadStoreReuse = 0.5
	g := NewSynthetic(p, 37)
	stores := make(map[uint64]bool)
	reused := 0
	for i := 0; i < 50000; i++ {
		in := g.Next()
		if in.Class == isa.Store {
			stores[in.Addr] = true
		}
		if in.Class == isa.Load && stores[in.Addr] {
			reused++
		}
	}
	if reused < 100 {
		t.Errorf("only %d loads hit stored addresses with reuse=0.5", reused)
	}
}
