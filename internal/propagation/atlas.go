package propagation

import (
	"fmt"
	"sort"
	"strings"
)

// Root is one entry of the root-cause ranking: the instruction (by thread
// and PC) whose in-flight state strikes corrupted first, with how often
// that corruption survived to commit.
type Root struct {
	TID     int
	PC      uint64
	Op      string
	Strikes int // corrupting strikes first landing on this instruction
	SDC     int // of those, traces terminating in silent data corruption
}

// Atlas is the aggregate of a propagation analysis: every per-strike
// Trace plus the cross-trace tables — terminal taxonomy, per-edge-type
// hop histograms, the thread contamination matrix, per-structure escape
// routes, and the per-PC root-cause ranking.
type Atlas struct {
	// Strikes counts analyzed strikes; Resolved those whose victim uop
	// was identified; Truncated those whose expansion hit the node bound.
	Strikes   int
	Resolved  int
	Truncated int
	// Terminals counts traces per terminal class (sdc/due/corrected/masked).
	Terminals map[string]int
	// EdgeCounts counts traversed edges per type across all traces.
	EdgeCounts map[string]int
	// HopHist[type][hop] counts edges of a type crossed at a given depth
	// (hop 1 is the first edge out of the victim).
	HopHist map[string][]uint64
	// Matrix[from][to] counts dataflow edges from thread 'from' into
	// thread 'to': the diagonal is intra-thread flow, off-diagonal
	// entries are cross-thread contamination through the shared DL1.
	Matrix [][]uint64
	// Escapes[struct][type] counts hop-1 edges per struck structure: the
	// route corruption takes out of each structure.
	Escapes map[string]map[string]int
	// MaxDepth is the deepest hop any trace reached.
	MaxDepth int
	// Traces holds every per-strike record, in strike order.
	Traces []Trace

	roots map[rootKey]*Root
}

type rootKey struct {
	tid int
	pc  uint64
}

// NewAtlas builds an empty atlas for a machine with the given thread
// count (the contamination matrix grows if traces name higher threads).
func NewAtlas(threads int) *Atlas {
	a := &Atlas{
		Terminals:  map[string]int{},
		EdgeCounts: map[string]int{},
		HopHist:    map[string][]uint64{},
		Escapes:    map[string]map[string]int{},
		roots:      map[rootKey]*Root{},
	}
	a.growMatrix(threads)
	return a
}

func (a *Atlas) growMatrix(threads int) {
	for len(a.Matrix) < threads {
		a.Matrix = append(a.Matrix, nil)
	}
	for i := range a.Matrix {
		for len(a.Matrix[i]) < threads {
			a.Matrix[i] = append(a.Matrix[i], 0)
		}
	}
}

// Add folds one trace into the aggregate tables — Analyze uses it per
// strike, and it rebuilds an atlas from traces read back off JSONL.
func (a *Atlas) Add(tr Trace) {
	a.Strikes++
	a.Traces = append(a.Traces, tr)
	a.Terminals[tr.Terminal]++
	if tr.Resolved {
		a.Resolved++
		r := a.roots[rootKey{tr.RootTID, tr.RootPC}]
		if r == nil {
			r = &Root{TID: tr.RootTID, PC: tr.RootPC, Op: tr.RootOp}
			a.roots[rootKey{tr.RootTID, tr.RootPC}] = r
		}
		r.Strikes++
		if tr.Terminal == TerminalSDC {
			r.SDC++
		}
	}
	if tr.Truncated {
		a.Truncated++
	}
	if tr.Depth > a.MaxDepth {
		a.MaxDepth = tr.Depth
	}
	for typ, n := range tr.Edges {
		a.EdgeCounts[typ] += n
	}
	for pair, n := range tr.Pairs {
		var from, to int
		if _, err := fmt.Sscanf(pair, "%d>%d", &from, &to); err != nil || from < 0 || to < 0 {
			continue
		}
		th := from
		if to > th {
			th = to
		}
		a.growMatrix(th + 1)
		a.Matrix[from][to] += uint64(n)
	}
	for _, h := range tr.Hops {
		hist := a.HopHist[h.Type]
		for len(hist) <= h.Hop {
			hist = append(hist, 0)
		}
		hist[h.Hop]++
		a.HopHist[h.Type] = hist
		if h.Hop == 1 {
			esc := a.Escapes[tr.Struct]
			if esc == nil {
				esc = map[string]int{}
				a.Escapes[tr.Struct] = esc
			}
			esc[h.Type]++
		}
	}
}

// CrossEdges returns the total off-diagonal mass of the contamination
// matrix — edges that crossed a thread boundary.
func (a *Atlas) CrossEdges() uint64 {
	var n uint64
	for i := range a.Matrix {
		for j := range a.Matrix[i] {
			if i != j {
				n += a.Matrix[i][j]
			}
		}
	}
	return n
}

// Roots returns the root-cause ranking: instructions ordered by SDC
// count, then corrupting strikes, then thread and PC.
func (a *Atlas) Roots() []Root {
	out := make([]Root, 0, len(a.roots))
	for _, r := range a.roots {
		out = append(out, *r)
	}
	sort.Slice(out, func(x, y int) bool {
		if out[x].SDC != out[y].SDC {
			return out[x].SDC > out[y].SDC
		}
		if out[x].Strikes != out[y].Strikes {
			return out[x].Strikes > out[y].Strikes
		}
		if out[x].TID != out[y].TID {
			return out[x].TID < out[y].TID
		}
		return out[x].PC < out[y].PC
	})
	return out
}

// Tables renders the atlas as aligned text tables: the headline summary,
// the top root causes, per-edge-type hop histograms, the thread
// contamination matrix, and per-structure escape routes. top bounds the
// root-cause table (0 means 10).
func (a *Atlas) Tables(top int) string {
	if top <= 0 {
		top = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fault-propagation atlas: %d strikes, %d resolved", a.Strikes, a.Resolved)
	if a.Truncated > 0 {
		fmt.Fprintf(&b, ", %d truncated", a.Truncated)
	}
	b.WriteString("\n  terminals:")
	for _, term := range [4]string{TerminalSDC, TerminalDUE, TerminalCorrected, TerminalMasked} {
		fmt.Fprintf(&b, " %s=%d", term, a.Terminals[term])
	}
	fmt.Fprintf(&b, "\n  edges:")
	for _, typ := range EdgeTypes {
		fmt.Fprintf(&b, " %s=%d", typ, a.EdgeCounts[typ])
	}
	fmt.Fprintf(&b, " (max depth %d, cross-thread %d)\n", a.MaxDepth, a.CrossEdges())

	roots := a.Roots()
	if len(roots) > 0 {
		b.WriteString("\nroot causes (first-corrupted instructions):\n")
		fmt.Fprintf(&b, "  %-4s %-12s %-7s %8s %8s\n", "tid", "pc", "op", "strikes", "sdc")
		if len(roots) > top {
			roots = roots[:top]
		}
		for _, r := range roots {
			fmt.Fprintf(&b, "  %-4d %#-12x %-7s %8d %8d\n", r.TID, r.PC, r.Op, r.Strikes, r.SDC)
		}
	}

	if len(a.HopHist) > 0 {
		b.WriteString("\nhop depth by edge type (recorded hops):\n")
		for _, typ := range EdgeTypes {
			hist := a.HopHist[typ]
			if len(hist) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-12s", typ)
			for h := 1; h < len(hist); h++ {
				fmt.Fprintf(&b, " %d:%d", h, hist[h])
			}
			b.WriteString("\n")
		}
	}

	if len(a.Matrix) > 0 {
		b.WriteString("\nthread contamination matrix (edges from row thread into column thread):\n  from\\to")
		for j := range a.Matrix {
			fmt.Fprintf(&b, " %8s", fmt.Sprintf("T%d", j))
		}
		b.WriteString("\n")
		for i := range a.Matrix {
			fmt.Fprintf(&b, "  %-7s", fmt.Sprintf("T%d", i))
			for j := range a.Matrix[i] {
				fmt.Fprintf(&b, " %8d", a.Matrix[i][j])
			}
			b.WriteString("\n")
		}
	}

	if len(a.Escapes) > 0 {
		b.WriteString("\nescape routes (first hop out of the struck structure):\n")
		structs := make([]string, 0, len(a.Escapes))
		for s := range a.Escapes {
			structs = append(structs, s)
		}
		sort.Strings(structs)
		for _, s := range structs {
			fmt.Fprintf(&b, "  %-9s", s)
			for _, typ := range EdgeTypes {
				if n := a.Escapes[s][typ]; n > 0 {
					fmt.Fprintf(&b, " %s=%d", typ, n)
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
