package propagation

import (
	"fmt"
	"sort"

	"smtavf/internal/avf"
	"smtavf/internal/inject"
	"smtavf/internal/isa"
)

// wordKey addresses memory dataflow at the cache's 8-byte word
// granularity. Thread address spaces are disjoint, so the tid is
// redundant with the word — it is kept as a guard against generator
// overlap.
type wordKey struct {
	tid  int32
	word uint64
}

func (n *node) word() wordKey { return wordKey{n.tid, n.addr >> 3} }

// touch is one access to a DL1 set: a load reading the array at issue, or
// a committed store writing it at retire.
type touch struct {
	cycle uint64
	idx   int // node index
}

// analysis is the dataflow index built once per Analyze call: who writes
// and reads each physical register, which store satisfied each load (by
// forwarding or through memory), and who touched each DL1 set when.
type analysis struct {
	t   *Tracer
	opt Options

	regWrites map[int32][]int // executed writers per phys reg, by (writeback, gseq)
	regReads  map[int32][]int // issued readers per phys reg, by issue cycle
	fwdOut    map[int][]int   // store node -> loads it forwarded to
	memOut    map[int][]int   // store node -> loads that read it through memory
	sets      [][]touch       // DL1 set -> touches, by cycle
}

// build indexes the tracer's nodes. Every list is sorted by explicit keys
// so the whole analysis is deterministic.
func (t *Tracer) build() *analysis {
	a := &analysis{
		t:         t,
		opt:       t.opt,
		regWrites: make(map[int32][]int),
		regReads:  make(map[int32][]int),
		fwdOut:    make(map[int][]int),
		memOut:    make(map[int][]int),
	}
	if t.dl1.Size > 0 {
		a.sets = make([][]touch, t.dl1.Sets())
	}
	// Store lists per word for load matching.
	fwdStores := make(map[wordKey][]int) // executed stores, by gseq
	memStores := make(map[wordKey][]int) // committed stores, by (retire, gseq)
	var loads []int
	for i := range t.nodes {
		n := &t.nodes[i]
		if n.executed && n.physDest >= 0 {
			a.regWrites[n.physDest] = append(a.regWrites[n.physDest], i)
		}
		if n.issued {
			if n.physSrc1 >= 0 {
				a.regReads[n.physSrc1] = append(a.regReads[n.physSrc1], i)
			}
			if n.physSrc2 >= 0 && n.physSrc2 != n.physSrc1 {
				a.regReads[n.physSrc2] = append(a.regReads[n.physSrc2], i)
			}
		}
		switch n.class {
		case isa.Store:
			if n.executed {
				fwdStores[n.word()] = append(fwdStores[n.word()], i)
			}
			if n.committed() {
				memStores[n.word()] = append(memStores[n.word()], i)
				a.touchSet(n.addr, touch{n.retire, i})
			}
		case isa.Load:
			if n.issued {
				loads = append(loads, i)
				if !n.forwarded {
					// Wrong-path loads access the DL1 too.
					a.touchSet(n.addr, touch{n.issueAt, i})
				}
			}
		}
	}
	for _, idxs := range a.regWrites {
		sort.Slice(idxs, func(x, y int) bool {
			nx, ny := &t.nodes[idxs[x]], &t.nodes[idxs[y]]
			if nx.ready != ny.ready {
				return nx.ready < ny.ready
			}
			return nx.gseq < ny.gseq
		})
	}
	for _, idxs := range a.regReads {
		sort.Slice(idxs, func(x, y int) bool {
			nx, ny := &t.nodes[idxs[x]], &t.nodes[idxs[y]]
			if nx.issueAt != ny.issueAt {
				return nx.issueAt < ny.issueAt
			}
			return nx.gseq < ny.gseq
		})
	}
	for _, idxs := range fwdStores {
		sort.Slice(idxs, func(x, y int) bool {
			return t.nodes[idxs[x]].gseq < t.nodes[idxs[y]].gseq
		})
	}
	for _, idxs := range memStores {
		sort.Slice(idxs, func(x, y int) bool {
			nx, ny := &t.nodes[idxs[x]], &t.nodes[idxs[y]]
			if nx.retire != ny.retire {
				return nx.retire < ny.retire
			}
			return nx.gseq < ny.gseq
		})
	}
	for s := range a.sets {
		sort.Slice(a.sets[s], func(x, y int) bool {
			tx, ty := a.sets[s][x], a.sets[s][y]
			if tx.cycle != ty.cycle {
				return tx.cycle < ty.cycle
			}
			return tx.idx < ty.idx
		})
	}
	// Match every load to the store it observed, mirroring the LSQ and
	// cache semantics: forwarded loads take the youngest older executed
	// same-word store (lsq.ForwardCheck); the rest read the latest store
	// committed before their DL1 access.
	for _, li := range loads {
		ld := &t.nodes[li]
		if ld.forwarded {
			best := -1
			for _, si := range fwdStores[ld.word()] {
				st := &t.nodes[si]
				if st.gseq >= ld.gseq {
					break
				}
				if st.ready <= ld.issueAt {
					best = si
				}
			}
			if best >= 0 {
				a.fwdOut[best] = append(a.fwdOut[best], li)
			}
			continue
		}
		best := -1
		for _, si := range memStores[ld.word()] {
			if t.nodes[si].retire > ld.issueAt {
				break
			}
			best = si
		}
		if best >= 0 {
			a.memOut[best] = append(a.memOut[best], li)
		}
	}
	return a
}

// touchSet logs one DL1 access into the set the address maps to.
func (a *analysis) touchSet(addr uint64, tc touch) {
	if len(a.sets) == 0 {
		return
	}
	set := int(addr/uint64(a.t.dl1.LineSize)) % len(a.sets)
	a.sets[set] = append(a.sets[set], tc)
}

// strikeSet maps a struck DL1 bit to its set. Lines are laid out
// set-interleaved: line index Bit/lineBits runs over the Sets*Ways lines
// with consecutive lines in consecutive sets, so set = line mod Sets —
// the same modeling granularity the campaign's capacity math uses.
func (a *analysis) strikeSet(st inject.Strike) (int, bool) {
	if len(a.sets) == 0 {
		return 0, false
	}
	var lineBits uint64
	switch st.Struct {
	case avf.DL1Data:
		lineBits = uint64(a.t.dl1.LineSize) * 8
	case avf.DL1Tag:
		lineBits = uint64(a.t.dl1.TagBits())
	default:
		return 0, false
	}
	if lineBits == 0 {
		return 0, false
	}
	return int(st.Bit/lineBits) % len(a.sets), true
}

// consumers returns the readers a write of phys by writer node wi would
// wake: reads issuing at or after the writeback, before the register's
// next reallocation (approximated by the next writeback to the same
// physical register).
func (a *analysis) consumers(phys int32, wi int) []int {
	writers := a.regWrites[phys]
	pos := -1
	for p, idx := range writers {
		if idx == wi {
			pos = p
			break
		}
	}
	if pos < 0 {
		return nil
	}
	w := &a.t.nodes[wi]
	limit := ^uint64(0)
	if pos+1 < len(writers) {
		limit = a.t.nodes[writers[pos+1]].ready
	}
	var out []int
	for _, ri := range a.regReads[phys] {
		r := &a.t.nodes[ri]
		if r.issueAt < w.ready {
			continue
		}
		if r.issueAt >= limit {
			break
		}
		out = append(out, ri)
	}
	return out
}

// resolve identifies the victim uop of a corrupting strike, plus the
// initial contamination hops for array strikes (the accesses that read a
// struck DL1 set after the strike). The strike's ThreadBit picks
// deterministically among equally-resident candidates.
func (a *analysis) resolve(st inject.Strike) (victim int, seeds []seed, ok bool) {
	t := a.t
	switch st.Struct {
	case avf.IQ, avf.ROB, avf.LSQTag, avf.LSQData, avf.FU:
		si := spanIndex(st.Struct)
		var cands []int
		for i := range t.nodes {
			n := &t.nodes[i]
			if int(n.tid) != st.TID {
				continue
			}
			sp := n.spans[si]
			if sp.end > sp.start && sp.start <= st.Cycle && st.Cycle < sp.end {
				cands = append(cands, i)
			}
		}
		return pickByGSeq(t, cands, st.ThreadBit)
	case avf.Reg:
		// The register file's ACE window runs from the write to the last
		// read; reconstruct it from the consumer lists.
		var cands []int
		for i := range t.nodes {
			n := &t.nodes[i]
			if int(n.tid) != st.TID || !n.executed || n.physDest < 0 || n.ready > st.Cycle {
				continue
			}
			for _, ri := range a.consumers(n.physDest, i) {
				if a.t.nodes[ri].issueAt >= st.Cycle {
					cands = append(cands, i)
					break
				}
			}
		}
		return pickByGSeq(t, cands, st.ThreadBit)
	case avf.DL1Data, avf.DL1Tag:
		set, mapped := a.strikeSet(st)
		if !mapped {
			return -1, nil, false
		}
		touches := a.sets[set]
		// Victim: the struck thread's last access to the set before the
		// strike (falling back to any thread's — the line may be resident
		// long after its owner's access).
		victim = -1
		anyPrior := -1
		for _, tc := range touches {
			if tc.cycle > st.Cycle {
				break
			}
			anyPrior = tc.idx
			if int(t.nodes[tc.idx].tid) == st.TID {
				victim = tc.idx
			}
		}
		if victim < 0 {
			victim = anyPrior
		}
		if victim < 0 {
			return -1, nil, false
		}
		// Initial hops: the first access each thread makes to the
		// corrupted set after the strike — same-thread reads re-consume
		// the datum (memory), other threads are contaminated through the
		// shared array (cross_thread).
		seen := map[int32]bool{}
		for _, tc := range touches {
			if tc.cycle <= st.Cycle {
				continue
			}
			tid := t.nodes[tc.idx].tid
			if seen[tid] || tc.idx == victim {
				continue
			}
			seen[tid] = true
			typ := EdgeMemory
			if int(tid) != st.TID {
				typ = EdgeCrossThread
			}
			seeds = append(seeds, seed{idx: tc.idx, typ: typ, cycle: tc.cycle})
		}
		return victim, seeds, true
	default:
		// ITLB/DTLB strikes corrupt translations, not tracked dataflow.
		return -1, nil, false
	}
}

// seed is an initial hop-1 contamination edge attached during victim
// resolution (DL1 set strikes).
type seed struct {
	idx   int
	typ   string
	cycle uint64
}

// pickByGSeq orders candidates by fetch age and lets the strike's
// ThreadBit choose — the offset within the thread's ACE share is uniform
// over resident state, so this keeps victim selection unbiased and
// deterministic.
func pickByGSeq(t *Tracer, cands []int, threadBit uint64) (int, []seed, bool) {
	if len(cands) == 0 {
		return -1, nil, false
	}
	sort.Slice(cands, func(x, y int) bool {
		return t.nodes[cands[x]].gseq < t.nodes[cands[y]].gseq
	})
	return cands[int(threadBit%uint64(len(cands)))], nil, true
}

// trace taint-tracks one strike through the dataflow index.
func (a *analysis) trace(st inject.Strike) Trace {
	t := a.t
	tr := Trace{
		V:         SchemaVersion,
		Struct:    st.Struct.String(),
		Cycle:     st.Cycle,
		Bit:       st.Bit,
		TID:       st.TID,
		Outcome:   st.Outcome.String(),
		RootTID:   -1,
		CommitHop: -1,
	}
	if !st.Outcome.Corrupting() {
		tr.Terminal = TerminalMasked
		return tr
	}
	victim, seeds, ok := a.resolve(st)
	if ok {
		v := &t.nodes[victim]
		tr.Resolved = true
		tr.RootTID = int(v.tid)
		tr.RootPC = v.pc
		tr.RootOp = v.class.String()
	}
	switch st.Outcome {
	case inject.DUE:
		// Parity caught the corruption inside the structure; nothing
		// escapes, but the root still names the at-risk instruction.
		tr.Terminal = TerminalDUE
		return tr
	case inject.Corrected:
		tr.Terminal = TerminalCorrected
		return tr
	}
	if !ok {
		// An SDC verdict we cannot localize (TLB strike, or no recorded
		// resident uop); the ACE classification stands.
		tr.Terminal = TerminalSDC
		return tr
	}

	// Breadth-first taint expansion from the victim.
	hops := map[int]int{victim: 0}
	queue := []int{victim}
	tr.Tainted = 1
	edge := func(from, to int, typ string, cycle uint64) {
		if _, seen := hops[to]; seen {
			return
		}
		if len(hops) >= a.opt.MaxNodes {
			tr.Truncated = true
			return
		}
		h := hops[from] + 1
		hops[to] = h
		queue = append(queue, to)
		tr.Tainted++
		if tr.Edges == nil {
			// Lazy: traces with no edges serialize without the maps, so a
			// JSONL round trip reproduces them exactly.
			tr.Edges = map[string]int{}
			tr.Pairs = map[string]int{}
		}
		tr.Edges[typ]++
		if h > tr.Depth {
			tr.Depth = h
		}
		fn, tn := &t.nodes[from], &t.nodes[to]
		if fn.tid != tn.tid {
			tr.CrossThread++
		}
		tr.Pairs[fmt.Sprintf("%d>%d", fn.tid, tn.tid)]++
		if len(tr.Hops) < a.opt.MaxRecordedHops {
			tr.Hops = append(tr.Hops, Hop{
				Hop: h, Type: typ,
				FromTID: int(fn.tid), FromPC: fn.pc,
				ToTID: int(tn.tid), ToPC: tn.pc,
				Cycle: cycle,
			})
		}
	}
	for _, s := range seeds {
		edge(victim, s.idx, s.typ, s.cycle)
	}
	for qi := 0; qi < len(queue); qi++ {
		ni := queue[qi]
		if hops[ni] >= a.opt.MaxHops {
			continue
		}
		n := &t.nodes[ni]
		if n.executed && n.physDest >= 0 {
			for _, ri := range a.consumers(n.physDest, ni) {
				edge(ni, ri, EdgeReg, t.nodes[ri].issueAt)
			}
		}
		if n.class == isa.Store {
			for _, li := range a.fwdOut[ni] {
				edge(ni, li, EdgeForward, t.nodes[li].issueAt)
			}
			for _, li := range a.memOut[ni] {
				edge(ni, li, EdgeMemory, t.nodes[li].issueAt)
			}
			// A tainted committed store also dirties its DL1 set: the
			// next access each *other* thread makes to that set after the
			// writeback crosses the shared-array boundary.
			if n.committed() && len(a.sets) > 0 {
				set := int(n.addr/uint64(t.dl1.LineSize)) % len(a.sets)
				seen := map[int32]bool{n.tid: true}
				for _, tc := range a.sets[set] {
					if tc.cycle <= n.retire {
						continue
					}
					tid := t.nodes[tc.idx].tid
					if seen[tid] {
						continue
					}
					seen[tid] = true
					edge(ni, tc.idx, EdgeCrossThread, tc.cycle)
				}
			}
		}
	}

	// Terminal: the corruption is architecturally visible only if tainted
	// work committed live (ACE). Taint confined to squashed, dead, or NOP
	// uops never reaches committed state — microarchitectural masking the
	// per-strike view refines beyond the campaign's ACE verdict.
	for idx, h := range hops {
		if t.nodes[idx].fate == avf.FateCommitted && (tr.CommitHop < 0 || h < tr.CommitHop) {
			tr.CommitHop = h
		}
	}
	if tr.CommitHop >= 0 {
		tr.Terminal = TerminalSDC
	} else {
		tr.Terminal = TerminalMasked
	}
	return tr
}

// Analyze resolves and taint-tracks every strike against the recorded
// run, returning the aggregated atlas. Call after the simulation
// completes; the strikes typically come from Campaign.SampleStrikes with
// the same campaign that observed the run.
func (t *Tracer) Analyze(strikes []inject.Strike) *Atlas {
	a := t.build()
	atlas := NewAtlas(t.threads)
	for _, st := range strikes {
		atlas.Add(a.trace(st))
	}
	t.publish(atlas)
	return atlas
}

// publish pushes the atlas headline numbers to the telemetry gauges
// (every handle is a nil-receiver no-op when detached).
func (t *Tracer) publish(atlas *Atlas) {
	t.telStrikes.SetUint(uint64(atlas.Strikes))
	t.telResolved.SetUint(uint64(atlas.Resolved))
	t.telSDC.SetUint(uint64(atlas.Terminals[TerminalSDC]))
	t.telCross.SetUint(atlas.CrossEdges())
	t.telDepth.SetUint(uint64(atlas.MaxDepth))
}
