package propagation

import (
	"fmt"
	"io"

	"smtavf/internal/jsonlio"
)

// SchemaVersion is stamped into every Trace ("v" in JSONL) so downstream
// tooling can detect format drift. Bump it on any incompatible change to
// the Trace schema.
const SchemaVersion = 1

// Edge types of the propagation graph.
const (
	// EdgeReg is register dataflow: producer writeback → consumer wakeup
	// through a shared physical register.
	EdgeReg = "reg"
	// EdgeForward is store-to-load forwarding inside the LSQ.
	EdgeForward = "forward"
	// EdgeMemory is a committed store read back by a later same-word load
	// through the cache.
	EdgeMemory = "memory"
	// EdgeCrossThread is contamination through the shared DL1 arrays: the
	// next access another thread makes to a corrupted set.
	EdgeCrossThread = "cross_thread"
)

// EdgeTypes lists the propagation edge types in presentation order.
var EdgeTypes = [4]string{EdgeReg, EdgeForward, EdgeMemory, EdgeCrossThread}

// Terminal classifications of a trace.
const (
	// TerminalSDC: tainted state committed architecturally — silent data
	// corruption.
	TerminalSDC = "sdc"
	// TerminalDUE: the structure's parity detected the strike; propagation
	// is cut at hop 0.
	TerminalDUE = "due"
	// TerminalCorrected: ECC corrected the strike before it left the
	// structure.
	TerminalCorrected = "corrected"
	// TerminalMasked: the strike hit no ACE state, or every tainted uop
	// was squashed, dead, or a NOP — the corruption never committed.
	TerminalMasked = "masked"
)

// Hop is one edge of a strike's propagation graph: the corruption moved
// from the uop at FromPC to the uop at ToPC over a dataflow edge of the
// given type, reaching depth Hop (the victim is hop 0).
type Hop struct {
	Hop     int    `json:"hop"`
	Type    string `json:"type"`
	FromTID int    `json:"from_tid"`
	FromPC  uint64 `json:"from_pc"`
	ToTID   int    `json:"to_tid"`
	ToPC    uint64 `json:"to_pc"`
	// Cycle is when the corrupted value crossed the edge (consumer issue,
	// load issue, or the contaminating cache access).
	Cycle uint64 `json:"cycle"`
}

// Trace is the propagation record of one strike — one JSONL line of the
// atlas. Strikes that hit no ACE state (Outcome "masked") carry no victim;
// detected strikes (DUE, corrected) resolve their victim but stop at hop 0.
type Trace struct {
	V       int    `json:"v"` // SchemaVersion
	Struct  string `json:"struct"`
	Cycle   uint64 `json:"cycle"`
	Bit     uint64 `json:"bit"`
	TID     int    `json:"tid"` // owning thread; -1 for masked strikes
	Outcome string `json:"outcome"`

	// Resolved reports the victim uop was identified; strikes into
	// structures the tracer does not model (TLBs), or landing where no
	// recorded uop was resident, stay unresolved.
	Resolved bool   `json:"resolved"`
	RootTID  int    `json:"root_tid"`
	RootPC   uint64 `json:"root_pc"`
	RootOp   string `json:"root_op,omitempty"`

	// Terminal is where the corruption ended: "sdc", "due", "corrected",
	// or "masked".
	Terminal string `json:"terminal"`
	// CommitHop is the depth of the shallowest tainted uop that committed
	// architecturally (-1 when none did).
	CommitHop int `json:"commit_hop"`
	// Tainted counts distinct corrupted uops (the victim included); Depth
	// is the deepest hop reached.
	Tainted int `json:"tainted"`
	Depth   int `json:"depth"`
	// CrossThread counts edges that crossed a thread boundary.
	CrossThread int `json:"cross_thread"`
	// Truncated reports the taint expansion hit the per-trace node bound;
	// counts are then lower bounds.
	Truncated bool `json:"truncated,omitempty"`
	// Edges counts traversed edges per type (exact even when the recorded
	// hop list below is capped).
	Edges map[string]int `json:"edges,omitempty"`
	// Pairs counts edges per thread pair, keyed "from>to" (exact; the
	// contamination matrix is built from these).
	Pairs map[string]int `json:"pairs,omitempty"`
	// Hops is the per-edge record of the expansion, breadth-first,
	// capped at Options.MaxRecordedHops.
	Hops []Hop `json:"hops,omitempty"`
}

// checkTrace rejects traces with a schema version newer than this package
// understands (older versions still parse).
func checkTrace(tr *Trace) error {
	if tr.V > SchemaVersion {
		return fmt.Errorf("propagation: trace schema v%d is newer than supported v%d", tr.V, SchemaVersion)
	}
	return nil
}

// WriteJSONL writes traces as one JSON object per line (schema version in
// every line's "v" field).
func WriteJSONL(w io.Writer, traces []Trace) error {
	return jsonlio.WriteLines(w, traces)
}

// ReadJSONL parses traces written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Trace, error) {
	return jsonlio.ReadLines(r, checkTrace)
}

// WriteFile writes traces as JSONL to path, gzip-compressing when the name
// ends in .gz (the shared jsonlio convention).
func WriteFile(path string, traces []Trace) error {
	return jsonlio.WriteFile(path, traces)
}

// ReadFile reads traces from a JSONL file, transparently decompressing
// when the name ends in .gz.
func ReadFile(path string) ([]Trace, error) {
	return jsonlio.ReadFile(path, checkTrace)
}
