package propagation_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/core"
	"smtavf/internal/inject"
	"smtavf/internal/propagation"
	"smtavf/internal/trace"
	"smtavf/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runAtlas drives one deterministic simulation with a campaign and tracer
// attached, samples strikesPer strikes into every structure, and analyzes.
func runAtlas(t *testing.T, benches []string, total uint64, every, seed uint64,
	strikesPer int, opt propagation.Options) (*propagation.Atlas, []inject.Strike) {
	t.Helper()
	cfg := core.DefaultConfig(len(benches))
	cfg.Seed = seed
	profiles := make([]trace.Profile, 0, len(benches))
	for _, b := range benches {
		p, err := workload.Profile(b)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	camp, err := inject.NewCampaign(core.StructBits(cfg), every, seed)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := core.New(cfg, profiles)
	if err != nil {
		t.Fatal(err)
	}
	proc.AttachSink(camp)
	tracer := propagation.New(opt)
	proc.SetPropagation(tracer)
	res, err := proc.Run(core.Limits{TotalInstructions: total})
	if err != nil {
		t.Fatal(err)
	}
	if tracer.Len() == 0 {
		t.Fatal("tracer recorded no nodes")
	}
	if tracer.Dropped() != 0 {
		t.Fatalf("tracer dropped %d nodes below the cap", tracer.Dropped())
	}
	var strikes []inject.Strike
	for _, s := range avf.Structs() {
		strikes = append(strikes, camp.SampleStrikes(s, res.Cycles, strikesPer)...)
	}
	return tracer.Analyze(strikes), strikes
}

// TestAtlasEndToEnd runs a two-thread workload and checks the atlas
// surfaces every acceptance property: resolved victims, multi-hop
// propagation over every modeled edge type, and — the SMT-specific result
// — cross-thread contamination through the shared DL1 (a nonzero
// off-diagonal contamination-matrix entry).
func TestAtlasEndToEnd(t *testing.T) {
	atlas, strikes := runAtlas(t, []string{"mcf", "gcc"}, 20_000, 2, 7, 64,
		propagation.Options{})
	if atlas.Strikes != len(strikes) {
		t.Fatalf("atlas covers %d strikes, sampled %d", atlas.Strikes, len(strikes))
	}
	if atlas.Resolved == 0 {
		t.Fatal("no strike resolved a victim")
	}
	sum := 0
	for _, n := range atlas.Terminals {
		sum += n
	}
	if sum != atlas.Strikes {
		t.Fatalf("terminal counts sum to %d, want %d", sum, atlas.Strikes)
	}
	if atlas.Terminals[propagation.TerminalSDC] == 0 {
		t.Error("no trace terminated in SDC")
	}
	for _, typ := range []string{propagation.EdgeReg, propagation.EdgeMemory} {
		if atlas.EdgeCounts[typ] == 0 {
			t.Errorf("no %s edges traversed", typ)
		}
	}
	if atlas.MaxDepth < 2 {
		t.Errorf("max depth %d, want multi-hop propagation", atlas.MaxDepth)
	}
	// The SMT headline: corruption crossing the thread boundary through
	// the shared DL1 must appear off the matrix diagonal.
	if atlas.CrossEdges() == 0 {
		t.Fatal("no cross-thread contamination recorded")
	}
	off := false
	for i := range atlas.Matrix {
		for j := range atlas.Matrix[i] {
			if i != j && atlas.Matrix[i][j] > 0 {
				off = true
			}
		}
	}
	if !off {
		t.Fatal("contamination matrix has no nonzero off-diagonal entry")
	}

	tables := atlas.Tables(10)
	for _, want := range []string{"fault-propagation atlas", "root causes",
		"contamination matrix", "escape routes"} {
		if !bytes.Contains([]byte(tables), []byte(want)) {
			t.Errorf("Tables output missing %q", want)
		}
	}
}

// TestTraceJSONLRoundTrip checks traces survive serialization bit-exactly
// and that re-aggregating the decoded traces reproduces the matrix.
func TestTraceJSONLRoundTrip(t *testing.T) {
	atlas, _ := runAtlas(t, []string{"mcf", "gcc"}, 12_000, 3, 11, 24,
		propagation.Options{MaxRecordedHops: 8})
	var buf bytes.Buffer
	if err := propagation.WriteJSONL(&buf, atlas.Traces); err != nil {
		t.Fatal(err)
	}
	back, err := propagation.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(atlas.Traces) {
		t.Fatalf("read %d traces, wrote %d", len(back), len(atlas.Traces))
	}
	for i := range back {
		if !reflect.DeepEqual(back[i], atlas.Traces[i]) {
			t.Fatalf("trace %d changed across the round trip:\n got %+v\nwant %+v",
				i, back[i], atlas.Traces[i])
		}
	}
	rebuilt := propagation.NewAtlas(2)
	for _, tr := range back {
		rebuilt.Add(tr)
	}
	if !reflect.DeepEqual(rebuilt.Matrix, atlas.Matrix) {
		t.Fatalf("matrix rebuilt from JSONL = %v, want %v", rebuilt.Matrix, atlas.Matrix)
	}
}

// TestGoldenJSONL pins the serialized atlas of a small deterministic run:
// the same seed must produce byte-identical traces across releases, and
// the golden file itself must parse under the current schema version.
func TestGoldenJSONL(t *testing.T) {
	atlas, _ := runAtlas(t, []string{"mcf", "gcc"}, 8_000, 4, 13, 8,
		propagation.Options{MaxRecordedHops: 8})
	var buf bytes.Buffer
	if err := propagation.WriteJSONL(&buf, atlas.Traces); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "atlas.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (rerun with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("atlas JSONL drifted from %s (rerun with -update if intended);\ngot %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
	traces, err := propagation.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	for i := range traces {
		if traces[i].V != propagation.SchemaVersion {
			t.Fatalf("golden trace %d carries schema v%d, want v%d",
				i, traces[i].V, propagation.SchemaVersion)
		}
	}
}

// TestDetachedTracerNoOps pins the nil-receiver convention the hot path
// relies on.
func TestDetachedTracerNoOps(t *testing.T) {
	var tr *propagation.Tracer
	tr.Record(nil, 0, false)
	tr.Rebase(5)
	tr.Configure(core.DefaultConfig(1).Bits, core.DefaultConfig(1).DL1, 1)
	tr.PublishTelemetry(nil)
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("detached tracer reports state")
	}
}

// TestMaskedAndProtectedStrikes checks the terminal taxonomy: masked
// strikes carry no victim, and parity/ECC outcomes cut propagation at hop
// zero even when the victim resolves.
func TestMaskedAndProtectedStrikes(t *testing.T) {
	atlas, strikes := runAtlas(t, []string{"mcf"}, 6_000, 4, 3, 16,
		propagation.Options{})
	for i, tr := range atlas.Traces {
		st := strikes[i]
		switch st.Outcome {
		case inject.Masked:
			if tr.Resolved || tr.Terminal != propagation.TerminalMasked || tr.Tainted != 0 {
				t.Fatalf("masked strike %d traced: %+v", i, tr)
			}
		case inject.SDC:
			if tr.Resolved && tr.Tainted == 0 {
				t.Fatalf("resolved SDC strike %d tainted nothing: %+v", i, tr)
			}
		}
		if tr.TID != st.TID || tr.Cycle != st.Cycle || tr.Struct != st.Struct.String() {
			t.Fatalf("trace %d does not mirror its strike: %+v vs %+v", i, tr, st)
		}
	}
}
