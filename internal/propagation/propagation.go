// Package propagation is the fault-propagation atlas: given the strikes a
// statistical fault-injection campaign (internal/inject) lands on the
// machine, it reconstructs where each unmasked corruption would travel —
// through which dataflow edges, how many hops deep, and across which
// thread boundaries — before it commits as silent data corruption, is cut
// off by detection, or dies with squashed and dead work.
//
// The AVF machinery answers "what fraction of strikes matter"; this
// package answers the follow-up the paper's §6 methodology discussion
// raises but cannot afford with live injection: *how* a strike that
// matters becomes an observable failure. A Tracer records one compact
// node per retired uop (the same population the avf.Tracker classifies,
// captured at the same commit/squash/end-of-run sites), and an offline
// Analyze pass replays the modeled dataflow over those nodes:
//
//   - reg: a corrupted result propagates from a producer's writeback to
//     every consumer the register file would have woken up — reads of the
//     same physical register between the write and its next reallocation.
//   - forward: a corrupted store propagates through store-to-load
//     forwarding inside the LSQ (the load's Forwarded flag, matched to
//     the youngest older same-address store, mirroring lsq.ForwardCheck).
//   - memory: a corrupted committed store propagates to later same-word
//     loads that missed forwarding and read the datum from the cache.
//   - cross_thread: thread address spaces are disjoint, so values never
//     flow between threads; what threads do share is the DL1 arrays. A
//     corrupted line (a struck set, or a tainted store's writeback into
//     one) makes the next access other threads make to that set the
//     contamination frontier — the shared-array channel the paper's SMT
//     vulnerability analysis is about.
//
// Victim resolution is deterministic: the strike's ThreadBit (its offset
// within the owning thread's ACE share) picks among the thread's uops
// resident in the struck structure at the strike cycle, so the same seed
// always yields the same propagation graph. Traces serialize as versioned
// JSONL through internal/jsonlio and aggregate into an Atlas: per-PC
// root-cause ranking, per-edge-type hop histograms, the striker-thread ×
// victim-thread contamination matrix, and per-structure escape routes.
//
// Like the pipetrace recorder and the injection campaign, a nil *Tracer
// is a valid detached tracer: the hot-path hooks are nil-receiver no-ops.
package propagation

import (
	"smtavf/internal/avf"
	"smtavf/internal/isa"
	"smtavf/internal/mem"
	"smtavf/internal/pipeline"
	"smtavf/internal/telemetry"
)

// Options parameterizes a Tracer.
type Options struct {
	// Cap bounds the retained node buffer; once reached, further uops are
	// dropped and counted (Dropped). 0 selects DefaultCap.
	Cap int `json:"cap,omitempty"`
	// MaxHops bounds the breadth-first taint expansion depth of one
	// strike. 0 selects DefaultMaxHops.
	MaxHops int `json:"max_hops,omitempty"`
	// MaxNodes bounds the tainted-node set of one strike; a trace that
	// hits it is marked Truncated. 0 selects DefaultMaxNodes.
	MaxNodes int `json:"max_nodes,omitempty"`
	// MaxRecordedHops bounds the per-trace serialized hop list (the edge
	// counters stay exact past it). 0 selects DefaultMaxRecordedHops.
	MaxRecordedHops int `json:"max_recorded_hops,omitempty"`
}

// Defaults for Options fields left zero.
const (
	DefaultCap             = 1 << 20
	DefaultMaxHops         = 32
	DefaultMaxNodes        = 4096
	DefaultMaxRecordedHops = 64
)

func (o Options) withDefaults() Options {
	if o.Cap <= 0 {
		o.Cap = DefaultCap
	}
	if o.MaxHops <= 0 {
		o.MaxHops = DefaultMaxHops
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = DefaultMaxNodes
	}
	if o.MaxRecordedHops <= 0 {
		o.MaxRecordedHops = DefaultMaxRecordedHops
	}
	return o
}

// span is one structure-residency interval of a node, already clipped at
// the warmup rebase. Index order follows spanStructs.
type span struct {
	start, end uint64
}

// spanStructs orders the per-node residency spans (node.spans).
var spanStructs = [5]avf.Struct{avf.IQ, avf.ROB, avf.LSQTag, avf.LSQData, avf.FU}

// spanIndex inverts spanStructs; -1 for structures nodes carry no span of.
func spanIndex(s avf.Struct) int {
	for i, ss := range spanStructs {
		if ss == s {
			return i
		}
	}
	return -1
}

// node is the compact per-uop capture the offline analysis runs over —
// everything copied out of the pooled *pipeline.Uop inside Record, per the
// flight-recorder ownership contract.
type node struct {
	tid       int32
	physSrc1  int32
	physSrc2  int32
	physDest  int32
	class     isa.Class
	fate      avf.Fate
	wrongPath bool
	forwarded bool
	issued    bool
	executed  bool
	gseq      uint64
	pc        uint64
	addr      uint64
	issueAt   uint64
	ready     uint64 // writeback cycle (valid when executed)
	retire    uint64
	spans     [5]span
}

// committed reports the node retired by commit (its state reached the
// architectural machine), mirroring pipetrace.Record.Committed.
func (n *node) committed() bool {
	return n.fate != avf.FateWrongPath && n.fate != avf.FateSquashed
}

// Tracer records the per-uop nodes the propagation analysis needs. Attach
// with core.Processor.SetPropagation before Run; a nil *Tracer is a valid
// detached tracer (Record and Rebase are nil-receiver no-ops, the same
// convention the pipetrace recorder and the injection campaign follow).
//
// A Tracer is driven from the simulator's goroutine and is not safe for
// concurrent use during a run; Analyze it after Run returns.
type Tracer struct {
	opt     Options
	bits    pipeline.Bits
	dl1     mem.Config
	threads int
	rebase  uint64
	nodes   []node
	dropped uint64

	// Live result gauges (PublishTelemetry); nil-receiver no-ops when
	// telemetry is not attached.
	telStrikes  *telemetry.Gauge
	telResolved *telemetry.Gauge
	telSDC      *telemetry.Gauge
	telCross    *telemetry.Gauge
	telDepth    *telemetry.Gauge
}

// New builds a tracer. Geometry (bit widths, DL1 shape, thread count) is
// supplied by the processor at attach time via Configure.
func New(opt Options) *Tracer {
	return &Tracer{opt: opt.withDefaults(), bits: pipeline.DefaultBits()}
}

// Configure tells the tracer the machine geometry it is attached to: the
// per-entry bit widths (victim spans use the same weights as the AVF
// tracker), the DL1 shape (strike bit → set mapping for the shared-cache
// contamination channel), and the thread count (contamination matrix
// dimensions). The processor calls it from SetPropagation.
func (t *Tracer) Configure(bits pipeline.Bits, dl1 mem.Config, threads int) {
	if t == nil {
		return
	}
	t.bits = bits
	t.dl1 = dl1
	t.threads = threads
}

// Record captures the lifecycle of u, retiring at cycle retire with the
// given squash outcome. The processor calls it beside every
// pipetrace.Recorder.Record site — commit, squash, and end-of-run
// accounting — so the tracer sees exactly the population the tracker
// classified. Everything is copied out of u before returning (the core
// recycles u through a pool the moment Record returns).
func (t *Tracer) Record(u *pipeline.Uop, retire uint64, squashed bool) {
	if t == nil {
		return
	}
	if len(t.nodes) >= t.opt.Cap {
		t.dropped++
		return
	}
	n := node{
		tid:       int32(u.TID),
		physSrc1:  int32(u.PhysSrc1),
		physSrc2:  int32(u.PhysSrc2),
		physDest:  int32(u.PhysDest),
		class:     u.Class,
		fate:      u.Fate(squashed),
		wrongPath: u.WrongPath,
		forwarded: u.Forwarded,
		issued:    u.Issued,
		executed:  u.Executed,
		gseq:      u.GSeq,
		pc:        u.PC,
		addr:      u.Addr,
		issueAt:   u.IssuedAt,
		ready:     u.ReadyAt,
		retire:    retire,
	}
	for i, res := range u.Residencies(t.bits) {
		start, end := res.Start, res.End
		if start < t.rebase {
			start = t.rebase
		}
		if end <= start {
			continue // never occupied (or entirely pre-rebase)
		}
		n.spans[i] = span{start, end}
	}
	t.nodes = append(t.nodes, n)
}

// Rebase drops everything recorded so far and clips all future residency
// spans at cycle — called at the end of warmup, exactly when the tracker
// and the injection campaign rebase, so traces cover only the measurement
// window the strike grid covers.
func (t *Tracer) Rebase(cycle uint64) {
	if t == nil {
		return
	}
	t.rebase = cycle
	t.nodes = t.nodes[:0]
	t.dropped = 0
}

// Len returns the number of retained nodes.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.nodes)
}

// Dropped returns the number of uops discarded by the node cap; a nonzero
// value means traces past the capped region cannot resolve victims.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// PublishTelemetry registers the tracer's result gauges on the collector:
// after Analyze runs, inject.prop.strikes, inject.prop.resolved,
// inject.prop.sdc, inject.prop.cross_thread, and inject.prop.depth_max
// carry the atlas headline numbers on the /telemetry and /debug/vars
// endpoints. A nil collector leaves the tracer unobserved.
func (t *Tracer) PublishTelemetry(col *telemetry.Collector) {
	if t == nil {
		return
	}
	t.telStrikes = col.Gauge("inject.prop.strikes")
	t.telResolved = col.Gauge("inject.prop.resolved")
	t.telSDC = col.Gauge("inject.prop.sdc")
	t.telCross = col.Gauge("inject.prop.cross_thread")
	t.telDepth = col.Gauge("inject.prop.depth_max")
}
