package inject

import (
	"math"
	"testing"

	"smtavf/internal/avf"
)

func bits() [avf.NumStructs]uint64 {
	var b [avf.NumStructs]uint64
	for i := range b {
		b[i] = 1000
	}
	return b
}

func TestEstimateMatchesHandComputedAVF(t *testing.T) {
	c, err := NewCampaign(bits(), 1, 7) // sample every cycle: exact
	if err != nil {
		t.Fatal(err)
	}
	// 100 ACE bits resident for cycles [0, 50) of a 100-cycle run:
	// AVF = 100*50 / (1000*100) = 5%.
	c.Interval(avf.IQ, 0, 100, 0, 50, true)
	if got := c.Estimate(avf.IQ, 100); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("estimate %v, want 0.05", got)
	}
	if got := c.Occupancy(avf.IQ, 100); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("occupancy %v, want 0.05", got)
	}
}

func TestUnACEIntervalsDoNotCorrupt(t *testing.T) {
	c, _ := NewCampaign(bits(), 1, 7)
	c.Interval(avf.IQ, 0, 100, 0, 50, false)
	if got := c.Estimate(avf.IQ, 100); got != 0 {
		t.Fatalf("un-ACE estimate %v", got)
	}
	if got := c.Occupancy(avf.IQ, 100); got == 0 {
		t.Fatal("occupancy lost")
	}
}

func TestSparseSamplingApproximates(t *testing.T) {
	c, _ := NewCampaign(bits(), 7, 3)
	// Many small intervals covering [i*10, i*10+5) — true AVF = 50% of
	// occupancy window; over 10_000 cycles AVF = 100*5*1000ints /
	// (1000*10000) = 5%.
	for i := uint64(0); i < 1000; i++ {
		c.Interval(avf.IQ, 0, 100, i*10, i*10+5, true)
	}
	got := c.Estimate(avf.IQ, 10_000)
	if math.Abs(got-0.05) > 0.01 {
		t.Fatalf("sparse estimate %v, want ~0.05", got)
	}
}

func TestEmptyIntervalIgnored(t *testing.T) {
	c, _ := NewCampaign(bits(), 1, 7)
	c.Interval(avf.IQ, 0, 100, 50, 50, true)
	c.Interval(avf.IQ, 0, 100, 60, 50, true)
	if c.Events() != 0 {
		t.Fatal("degenerate intervals recorded")
	}
}

func TestOverbookedDetection(t *testing.T) {
	c, _ := NewCampaign(bits(), 1, 7)
	// Two overlapping intervals of 600 bits each exceed the 1000-bit
	// capacity during the overlap.
	c.Interval(avf.IQ, 0, 600, 0, 100, true)
	c.Interval(avf.IQ, 0, 600, 50, 150, true)
	if c.Overbooked(avf.IQ) == 0 {
		t.Fatal("overlap not detected")
	}
	// Non-overlapping intervals are fine.
	d, _ := NewCampaign(bits(), 1, 7)
	d.Interval(avf.IQ, 0, 600, 0, 50, true)
	d.Interval(avf.IQ, 0, 600, 50, 100, true)
	if d.Overbooked(avf.IQ) != 0 {
		t.Fatal("false overlap")
	}
}

func TestOutcomesConverge(t *testing.T) {
	c, _ := NewCampaign(bits(), 1, 7)
	c.Interval(avf.IQ, 0, 300, 0, 100, true) // AVF = 30%
	corrupted := c.Outcomes(avf.IQ, 100, 100_000)
	rate := float64(corrupted) / 100_000
	if math.Abs(rate-0.30) > 0.01 {
		t.Fatalf("strike corruption rate %v, want ~0.30", rate)
	}
}

func TestZeroPitchRejected(t *testing.T) {
	if _, err := NewCampaign(bits(), 0, 1); err == nil {
		t.Fatal("zero pitch accepted")
	}
}

func TestSamplesCount(t *testing.T) {
	c, _ := NewCampaign(bits(), 10, 1)
	if c.Samples(0) != 0 {
		t.Fatal("samples in an empty run")
	}
	n := c.Samples(1000)
	if n < 99 || n > 101 {
		t.Fatalf("samples over 1000 cycles at pitch 10: %d", n)
	}
}

func TestRebaseDropsWarmupSamples(t *testing.T) {
	// Warmup run: heavy ACE residency before the rebase, light after.
	// Without the rebase the estimate would blend the two eras.
	c, err := NewCampaign(bits(), 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	c.Interval(avf.IQ, 0, 1000, 0, 100, true) // warmup: fully ACE
	c.Rebase(100)
	c.Interval(avf.IQ, 0, 500, 100, 200, true) // measured: half ACE

	// 100 measured cycles: every sample holds 500 of 1000 ACE bits.
	got := c.Estimate(avf.IQ, 100)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("post-rebase estimate = %v, want 0.5", got)
	}
	if ob := c.Overbooked(avf.IQ); ob != 0 {
		t.Fatalf("overbooked samples after rebase: %d", ob)
	}
}

func TestRebaseMatchesTrackerThroughWarmup(t *testing.T) {
	// Attach the campaign to a tracker and drive both through a warmup
	// rebase; the two independent accountings must agree afterwards.
	var b [avf.NumStructs]uint64
	for i := range b {
		b[i] = 1000
	}
	trk := avf.NewTracker(1, b)
	c, err := NewCampaign(b, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	trk.SetSink(c)

	trk.AddInterval(avf.IQ, 0, 1000, 0, 50, true) // warmup era
	trk.Rebase(50)
	trk.AddInterval(avf.IQ, 0, 250, 50, 150, true) // measurement era

	const measured = 100
	want := trk.AVF(avf.IQ, measured)
	got := c.Estimate(avf.IQ, measured)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("campaign %v vs tracker %v after rebase", got, want)
	}
}
