package inject

import (
	"math"
	"testing"

	"smtavf/internal/avf"
)

// goldenCampaign replays a fixed interval script — clipped starts,
// multi-thread ACE bits, un-ACE occupancy — into a freshly seeded
// campaign.
func goldenCampaign(t *testing.T) *Campaign {
	t.Helper()
	var bits [avf.NumStructs]uint64
	bits[avf.IQ] = 672
	bits[avf.ROB] = 1024
	bits[avf.DL1Data] = 4096
	c, err := NewCampaign(bits, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	c.Interval(avf.IQ, 0, 64, 0, 100, true)
	c.Interval(avf.IQ, 1, 32, 10, 60, true)
	c.Interval(avf.IQ, 0, 128, 5, 95, false)
	c.Interval(avf.ROB, 0, 300, 20, 80, true)
	c.Interval(avf.ROB, 1, 300, 40, 100, true)
	c.Interval(avf.DL1Data, 1, 2048, 0, 50, true)
	c.Interval(avf.DL1Data, 0, 1024, 50, 100, false)
	return c
}

// TestSeedStabilityGolden pins the campaign's entire deterministic
// surface to hard-coded values: grid phase, sample count, estimates, the
// raw Outcomes draws, and the sequential strike experiment. Identical
// seed + trace must stay bit-identical across releases — a change here
// means the internal/rng draw ordering (or the grid bookkeeping) moved,
// which silently invalidates every recorded campaign.
func TestSeedStabilityGolden(t *testing.T) {
	c := goldenCampaign(t)
	if got := c.Phase(); got != 2 {
		t.Errorf("phase = %d, want 2 (first draw from seed 9)", got)
	}
	if got := c.Events(); got != 7 {
		t.Errorf("events = %d, want 7", got)
	}
	if got := c.Samples(100); got != 33 {
		t.Errorf("samples = %d, want 33", got)
	}
	estimates := []struct {
		s    avf.Struct
		want float64
	}{
		{avf.IQ, 0.1197691198},
		{avf.ROB, 0.3551136364},
		{avf.DL1Data, 0.2424242424},
	}
	for _, e := range estimates {
		if got := c.Estimate(e.s, 100); math.Abs(got-e.want) > 1e-9 {
			t.Errorf("Estimate(%v) = %.10f, want %.10f", e.s, got, e.want)
		}
	}
	// The strike draws: exactly two rng values per strike, sample index
	// first — any reordering shifts these counts.
	draws := []struct {
		s    avf.Struct
		want int
	}{
		{avf.IQ, 30},
		{avf.ROB, 61},
		{avf.DL1Data, 47},
	}
	for _, d := range draws {
		if got := c.Outcomes(d.s, 100, 200); got != d.want {
			t.Errorf("Outcomes(%v, 200 strikes) = %d, want %d", d.s, got, d.want)
		}
	}
}

// TestSampleStrikesMatchesOutcomes pins the public Strike records to the
// same rng stream Outcomes consumes: two fresh campaigns with the same
// seed must agree strike for strike, and every field of each record must
// be internally consistent (cycle on the grid, bit within capacity,
// ThreadBit only when a thread owns the hit).
func TestSampleStrikesMatchesOutcomes(t *testing.T) {
	a := goldenCampaign(t)
	b := goldenCampaign(t)
	const n = 200
	for _, s := range []avf.Struct{avf.IQ, avf.ROB, avf.DL1Data} {
		strikes := a.SampleStrikes(s, 100, n)
		if len(strikes) != n {
			t.Fatalf("%v: got %d strikes, want %d", s, len(strikes), n)
		}
		corrupted := 0
		for i, st := range strikes {
			if st.Struct != s {
				t.Fatalf("%v strike %d: struct = %v", s, i, st.Struct)
			}
			if st.Cycle != a.phase+st.SampleIdx*a.every {
				t.Errorf("%v strike %d: cycle %d off the grid (idx %d)", s, i, st.Cycle, st.SampleIdx)
			}
			if st.Bit >= a.bits[s] {
				t.Errorf("%v strike %d: bit %d >= capacity %d", s, i, st.Bit, a.bits[s])
			}
			if st.Outcome.Corrupting() != (st.TID >= 0) {
				t.Errorf("%v strike %d: outcome %v with TID %d", s, i, st.Outcome, st.TID)
			}
			if st.Outcome.Corrupting() {
				corrupted++
			} else if st.ThreadBit != 0 {
				t.Errorf("%v strike %d: masked strike with ThreadBit %d", s, i, st.ThreadBit)
			}
		}
		if want := b.Outcomes(s, 100, n); corrupted != want {
			t.Errorf("%v: %d corrupting strikes, Outcomes drew %d from the same seed", s, corrupted, want)
		}
	}
}

// TestSeedStabilityGoldenRunStrikes pins the sequential experiment run
// directly after the Outcomes draws of the golden script (the rng stream
// continues across both phases).
func TestSeedStabilityGoldenRunStrikes(t *testing.T) {
	c := goldenCampaign(t)
	for _, s := range []avf.Struct{avf.IQ, avf.ROB, avf.DL1Data} {
		c.Outcomes(s, 100, 200)
	}
	st := c.RunStrikes(100, StopWhen(0.05, 4096))
	if st.TotalStrikes != 3072 || st.Rounds != 2 || !st.StoppedEarly {
		t.Fatalf("strike phase = %d strikes / %d rounds / early=%v, want 3072/2/true",
			st.TotalStrikes, st.Rounds, st.StoppedEarly)
	}
	want := []struct {
		s        avf.Struct
		outcomes [NumOutcomes]uint64
		threads  []uint64
	}{
		{avf.IQ, [NumOutcomes]uint64{888, 136, 0, 0}, []uint64{111, 25}},
		{avf.ROB, [NumOutcomes]uint64{644, 380, 0, 0}, []uint64{197, 183}},
		{avf.DL1Data, [NumOutcomes]uint64{790, 234, 0, 0}, []uint64{0, 234}},
	}
	for _, w := range want {
		r := st.PerStruct[w.s]
		if r.Outcomes != w.outcomes {
			t.Errorf("%v outcomes = %v, want %v", w.s, r.Outcomes, w.outcomes)
		}
		if len(r.PerThread) != len(w.threads) {
			t.Errorf("%v perThread = %v, want %v", w.s, r.PerThread, w.threads)
			continue
		}
		for i := range w.threads {
			if r.PerThread[i] != w.threads[i] {
				t.Errorf("%v perThread = %v, want %v", w.s, r.PerThread, w.threads)
				break
			}
		}
	}
}
