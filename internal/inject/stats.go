package inject

import (
	"fmt"
	"math"
	"strings"

	"smtavf/internal/avf"
	"smtavf/internal/telemetry"
)

// Detection describes the error protection of a structure, as seen by a
// strike: whether an ACE hit is silent, detected (parity — a Detected
// Unrecoverable Error), or corrected (ECC). core/protection.go maps its
// ProtectionMode values onto this type.
type Detection int

// Protection levels, weakest first.
const (
	DetectNone    Detection = iota // unprotected: ACE strikes corrupt silently
	DetectOnly                     // parity: ACE strikes are detected, not recovered
	DetectCorrect                  // ECC: ACE strikes are corrected
)

func (d Detection) String() string {
	switch d {
	case DetectOnly:
		return "parity"
	case DetectCorrect:
		return "ecc"
	default:
		return "none"
	}
}

// outcome maps the protection level to the taxonomy class of an ACE hit.
func (d Detection) outcome() Outcome {
	switch d {
	case DetectOnly:
		return DUE
	case DetectCorrect:
		return Corrected
	default:
		return SDC
	}
}

// Outcome classifies one strike — the campaign-level taxonomy of
// Khoshavi et al.'s transient-fault propagation studies: a strike is
// masked (idle or un-ACE state), silently corrupting (SDC), detected but
// unrecoverable (DUE, parity-protected structures), or corrected (ECC).
type Outcome int

// Strike outcome classes.
const (
	Masked      Outcome = iota // struck bit held no ACE state
	SDC                        // silent data corruption (unprotected ACE hit)
	DUE                        // detected unrecoverable error (parity ACE hit)
	Corrected                  // corrected error (ECC ACE hit)
	NumOutcomes = 4
)

func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case SDC:
		return "SDC"
	case DUE:
		return "DUE"
	case Corrected:
		return "corrected"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Corrupting reports whether the strike hit ACE state — the event whose
// probability is the structure's AVF. Detection refines ACE hits into
// silent vs detected vs corrected but does not change the AVF estimate:
// the tracker's residency accounting is equally protection-blind.
func (o Outcome) Corrupting() bool { return o != Masked }

// Stop is the sequential stopping rule of a strike experiment: keep
// drawing strikes until every structure's Wilson-score confidence
// interval is tighter than HalfWidth, or MaxStrikes strikes per structure
// have been spent — whichever comes first.
type Stop struct {
	// HalfWidth is the target CI half-width on each AVF estimate
	// (absolute AVF units; 0.02 means ±2 AVF points).
	HalfWidth float64 `json:"half_width,omitempty"`
	// MaxStrikes caps the strikes per structure (default 1<<20).
	MaxStrikes int `json:"max_strikes,omitempty"`
	// Confidence is the two-sided CI level (default 0.99).
	Confidence float64 `json:"confidence,omitempty"`
	// Batch is the number of strikes drawn per structure between CI
	// checks (default 512).
	Batch int `json:"batch,omitempty"`
}

// StopWhen builds the standard stopping rule: sample until every
// structure's CI half-width drops below halfWidth, spending at most
// maxStrikes strikes per structure.
func StopWhen(halfWidth float64, maxStrikes int) Stop {
	return Stop{HalfWidth: halfWidth, MaxStrikes: maxStrikes}
}

func (r Stop) withDefaults() Stop {
	if r.MaxStrikes <= 0 {
		r.MaxStrikes = 1 << 20
	}
	if r.Confidence == 0 {
		r.Confidence = 0.99
	}
	if r.Batch <= 0 {
		r.Batch = 512
	}
	return r
}

// StructStats is the strike-outcome record of one structure.
type StructStats struct {
	Struct     avf.Struct
	Protection Detection
	Strikes    uint64
	// Outcomes counts strikes per taxonomy class.
	Outcomes [NumOutcomes]uint64
	// PerThread counts ACE strikes attributed to each owning thread; the
	// entries sum to ACEStrikes.
	PerThread []uint64
	// AVF is the strike-based estimate ACEStrikes/Strikes; Lo and Hi
	// bound it at the experiment's confidence level (Wilson score).
	AVF       float64
	Lo, Hi    float64
	HalfWidth float64
}

// ACEStrikes returns the strikes that hit ACE state (SDC + DUE +
// corrected).
func (st StructStats) ACEStrikes() uint64 {
	return st.Outcomes[SDC] + st.Outcomes[DUE] + st.Outcomes[Corrected]
}

// Stats is the result of a sequential strike experiment (RunStrikes).
type Stats struct {
	Confidence   float64
	Rounds       int
	TotalStrikes uint64
	// StoppedEarly reports that every structure's CI reached the target
	// half-width before the per-structure strike cap was hit.
	StoppedEarly bool
	PerStruct    [avf.NumStructs]StructStats
}

// MaxHalfWidth returns the widest per-structure CI half-width — the
// quantity the stopping rule drives to the target.
func (st *Stats) MaxHalfWidth() float64 {
	w := 0.0
	for s := range st.PerStruct {
		if hw := st.PerStruct[s].HalfWidth; hw > w {
			w = hw
		}
	}
	return w
}

// Table renders the taxonomy and confidence intervals as an aligned text
// table.
func (st *Stats) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "strike outcomes at %.0f%% confidence (%d strikes, %d rounds",
		100*st.Confidence, st.TotalStrikes, st.Rounds)
	if st.StoppedEarly {
		b.WriteString(", stopped early")
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "  %-9s %-7s %9s %9s %9s %9s %9s %19s\n",
		"structure", "prot", "strikes", "masked", "SDC", "DUE", "corr", "AVF [CI]")
	for _, s := range avf.Structs() {
		r := st.PerStruct[s]
		fmt.Fprintf(&b, "  %-9s %-7s %9d %9d %9d %9d %9d  %6.2f%% [%5.2f,%5.2f]\n",
			s, r.Protection, r.Strikes, r.Outcomes[Masked], r.Outcomes[SDC],
			r.Outcomes[DUE], r.Outcomes[Corrected], 100*r.AVF, 100*r.Lo, 100*r.Hi)
	}
	return b.String()
}

// RunStrikes runs the sequential strike experiment over a recorded run of
// 'cycles' cycles: batches of strikes are drawn into every structure
// until the stopping rule is satisfied. Outcomes honour the configured
// protection (SetProtection) and are attributed per thread. Progress —
// strikes drawn, per-structure CI half-width, estimated strikes to stop —
// is published through the telemetry registry when PublishTelemetry was
// called.
func (c *Campaign) RunStrikes(cycles uint64, rule Stop) *Stats {
	rule = rule.withDefaults()
	z := zQuantile(rule.Confidence)
	st := &Stats{Confidence: rule.Confidence}
	var samples [avf.NumStructs]uint64
	for s := avf.Struct(0); s < avf.NumStructs; s++ {
		st.PerStruct[s] = StructStats{Struct: s, Protection: c.protection[s]}
		if c.bits[s] > 0 {
			samples[s] = c.Samples(cycles)
		}
	}

	for {
		st.Rounds++
		capped := false
		for s := avf.Struct(0); s < avf.NumStructs; s++ {
			r := &st.PerStruct[s]
			if samples[s] == 0 {
				continue // nothing recorded: the CI is vacuously tight
			}
			n := rule.Batch
			if left := rule.MaxStrikes - int(r.Strikes); n > left {
				n = left
			}
			for i := 0; i < n; i++ {
				strike := c.strike(s, samples[s])
				r.Outcomes[strike.Outcome]++
				if strike.Outcome.Corrupting() && strike.TID >= 0 {
					for len(r.PerThread) <= strike.TID {
						r.PerThread = append(r.PerThread, 0)
					}
					r.PerThread[strike.TID]++
				}
			}
			r.Strikes += uint64(n)
			st.TotalStrikes += uint64(n)
			if int(r.Strikes) >= rule.MaxStrikes {
				capped = true
			}
			r.AVF = float64(r.ACEStrikes()) / float64(r.Strikes)
			r.Lo, r.Hi = Wilson(r.ACEStrikes(), r.Strikes, rule.Confidence)
			r.HalfWidth = (r.Hi - r.Lo) / 2
		}
		converged := rule.HalfWidth > 0 && st.MaxHalfWidth() <= rule.HalfWidth
		c.publishProgress(st, rule, z)
		if converged {
			st.StoppedEarly = !capped
			break
		}
		if capped {
			break
		}
		if rule.HalfWidth <= 0 { // no CI target: one full pass to MaxStrikes
			continue
		}
	}
	return st
}

// etaStrikes estimates how many more strikes the widest structure needs
// before its CI reaches the target half-width — the "ETA to stop" the
// debug endpoint shows.
func etaStrikes(st *Stats, rule Stop, z float64) float64 {
	eta := 0.0
	for s := range st.PerStruct {
		r := &st.PerStruct[s]
		if r.Strikes == 0 || r.HalfWidth <= rule.HalfWidth {
			continue
		}
		p := r.AVF
		need := z * z * p * (1 - p) / (rule.HalfWidth * rule.HalfWidth)
		if min := z * z / (2 * rule.HalfWidth); need < min {
			need = min // width floor of the k=0 / k=n Wilson interval
		}
		if more := need - float64(r.Strikes); more > eta {
			eta = more
		}
	}
	return eta
}

// PublishTelemetry registers the campaign's live progress metrics on the
// collector: the inject.events counter ticks with every residency
// interval during the run, and the strike phase (RunStrikes) keeps
// inject.strikes, inject.rounds, inject.eta_strikes, and per-structure
// inject.halfwidth.* gauges current — all visible on the /telemetry and
// /debug/vars endpoints while a long campaign converges. A nil collector
// leaves the campaign unobserved.
func (c *Campaign) PublishTelemetry(col *telemetry.Collector) {
	if c == nil {
		return
	}
	c.telEvents = col.Counter("inject.events")
	c.telStrikes = col.Gauge("inject.strikes")
	c.telRounds = col.Gauge("inject.rounds")
	c.telETA = col.Gauge("inject.eta_strikes")
	for s := avf.Struct(0); s < avf.NumStructs; s++ {
		c.telHW[s] = col.Gauge("inject.halfwidth." + s.String())
	}
	c.prog = col.Progress()
	if l := col.SlogLogger(); l != nil {
		c.telLogger = l
	}
}

// publishProgress pushes one round of strike-phase progress to the
// registry (every handle is a nil-receiver no-op when detached).
func (c *Campaign) publishProgress(st *Stats, rule Stop, z float64) {
	c.telStrikes.SetUint(st.TotalStrikes)
	c.telRounds.SetUint(uint64(st.Rounds))
	for s := range st.PerStruct {
		c.telHW[s].Set(st.PerStruct[s].HalfWidth)
	}
	eta := etaStrikes(st, rule, z)
	c.telETA.Set(eta)
	// The campaign progress's strike phase counts strikes drawn; the
	// stopping-rule ETA revises the moving total every round.
	c.prog.Phase("strikes", 0)
	c.prog.SetTotal(st.TotalStrikes + uint64(eta))
	c.prog.Observe(st.TotalStrikes, 0)
	if c.telLogger != nil && st.Rounds%16 == 0 {
		c.telLogger.Info("inject round",
			"round", st.Rounds,
			"strikes", st.TotalStrikes,
			"max_halfwidth", fmt.Sprintf("%.5f", st.MaxHalfWidth()),
			"eta_strikes", fmt.Sprintf("%.0f", eta),
		)
	}
}

// Wilson returns the two-sided Wilson-score confidence interval of a
// binomial proportion with k successes in n trials at the given
// confidence level (e.g. 0.99). The Wilson interval stays inside [0, 1]
// and behaves sensibly at k = 0 and k = n, where the Wald interval
// collapses to a point — exactly the regime of very low (or very high)
// AVF structures.
func Wilson(k, n uint64, confidence float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	z := zQuantile(confidence)
	p := float64(k) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// zQuantile returns the two-sided standard-normal quantile for a
// confidence level: z such that P(|N(0,1)| <= z) = confidence
// (0.95 → 1.960, 0.99 → 2.576). It inverts the normal CDF with Acklam's
// rational approximation (|relative error| < 1.15e-9), which keeps the
// package dependency-free.
func zQuantile(confidence float64) float64 {
	if confidence <= 0 || confidence >= 1 {
		return 2.5758293035489004 // fall back to 99%
	}
	return normInv(0.5 + confidence/2)
}

// normInv is the standard normal inverse CDF (Acklam's approximation).
func normInv(p float64) float64 {
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	cc := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((cc[0]*q+cc[1])*q+cc[2])*q+cc[3])*q+cc[4])*q + cc[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((cc[0]*q+cc[1])*q+cc[2])*q+cc[3])*q+cc[4])*q + cc[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
