// Package inject implements statistical fault injection, the validation
// methodology the paper's §2 and §6 discuss as the (much more expensive)
// alternative to ACE analysis: strike random state bits at random cycles
// and observe the fraction of strikes that corrupt the program.
//
// A Campaign samples the machine on a systematic grid of cycles (every
// Every-th cycle, with a random phase). At each sample cycle the
// probability that a uniformly random bit strike corrupts the program is
//
//	P(corrupt | strike at cycle c) = ACE bits resident at c / total bits
//
// so the campaign's mean over sample cycles is an unbiased estimate of the
// structure's AVF — computed from an entirely different direction than the
// Tracker's residency accumulators. Agreement between the two validates
// the interval accounting end to end (intervals that overlapped,
// double-counted, or leaked past the end of the run would split the
// estimates apart). Campaign implements avf.Sink; attach it to a tracker
// before the run.
package inject

import (
	"fmt"

	"smtavf/internal/avf"
	"smtavf/internal/rng"
)

// Campaign collects strike samples. Create with NewCampaign, attach via
// Tracker.SetSink, run the simulation, then call Estimate/Outcomes.
//
// Campaign implements avf.RebaseObserver: when the tracker rebases at the
// end of a warmup period, the campaign drops every sample collected so
// far and re-anchors its grid at the rebase cycle, so the estimates cover
// exactly the measurement window the tracker covers (pass the measured
// cycle count — Results.Cycles — to Estimate/Occupancy/Outcomes).
type Campaign struct {
	every  uint64 // sample grid pitch in cycles
	phase  uint64 // grid offset, drawn in [0, every)
	origin uint64 // cycle the grid is anchored at (nonzero after a rebase)
	bits   [avf.NumStructs]uint64
	ace    [avf.NumStructs]map[uint64]uint64 // sample index -> ACE bits resident
	occ    [avf.NumStructs]map[uint64]uint64 // sample index -> occupied bits
	rnd    *rng.Source
	events uint64
}

// NewCampaign builds a campaign sampling every 'every' cycles. bits gives
// each structure's total capacity (use the same values the Tracker was
// built with). seed fixes the grid phase and the Bernoulli outcome draws.
func NewCampaign(bits [avf.NumStructs]uint64, every uint64, seed uint64) (*Campaign, error) {
	if every == 0 {
		return nil, fmt.Errorf("inject: sampling pitch must be positive")
	}
	c := &Campaign{every: every, bits: bits, rnd: rng.New(seed)}
	c.phase = c.rnd.Uint64n(every)
	for s := range c.ace {
		c.ace[s] = make(map[uint64]uint64)
		c.occ[s] = make(map[uint64]uint64)
	}
	return c, nil
}

var (
	_ avf.Sink           = (*Campaign)(nil)
	_ avf.RebaseObserver = (*Campaign)(nil)
)

// Rebase implements avf.RebaseObserver: warmup-era samples are discarded
// and the sample grid re-anchors at the rebase cycle, mirroring the
// tracker's accumulator reset.
func (c *Campaign) Rebase(cycle uint64) {
	c.origin = cycle
	for s := range c.ace {
		c.ace[s] = make(map[uint64]uint64)
		c.occ[s] = make(map[uint64]uint64)
	}
}

// Interval implements avf.Sink: it books the interval's bits into every
// sample cycle the interval covers. Cycles are re-expressed relative to
// the grid origin (the last rebase), matching the measured cycle counts
// the estimate queries use.
func (c *Campaign) Interval(s avf.Struct, tid int, bits, start, end uint64, ace bool) {
	if start < c.origin {
		start = c.origin
	}
	if end <= start {
		return
	}
	start -= c.origin
	end -= c.origin
	c.events++
	// First sample index at or after start.
	var idx uint64
	if start > c.phase {
		idx = (start - c.phase + c.every - 1) / c.every
	}
	for cyc := c.phase + idx*c.every; cyc < end; cyc += c.every {
		if ace {
			c.ace[s][idx] += bits
		}
		c.occ[s][idx] += bits
		idx++
	}
}

// Samples returns the number of sample cycles within a run of 'cycles'
// cycles.
func (c *Campaign) Samples(cycles uint64) uint64 {
	if cycles <= c.phase {
		return 0
	}
	return (cycles-c.phase-1)/c.every + 1
}

// Estimate returns the fault-injection AVF estimate for structure s over a
// run of 'cycles' cycles: the mean, over sample cycles, of the fraction of
// the structure's bits whose corruption would have mattered.
func (c *Campaign) Estimate(s avf.Struct, cycles uint64) float64 {
	n := c.Samples(cycles)
	if n == 0 || c.bits[s] == 0 {
		return 0
	}
	var sum uint64
	for idx, b := range c.ace[s] {
		if idx < n {
			sum += b
		}
	}
	return float64(sum) / (float64(n) * float64(c.bits[s]))
}

// Occupancy returns the estimated fraction of (bits × cycles) holding any
// tracked state — the analogue of Tracker.Occupancy.
func (c *Campaign) Occupancy(s avf.Struct, cycles uint64) float64 {
	n := c.Samples(cycles)
	if n == 0 || c.bits[s] == 0 {
		return 0
	}
	var sum uint64
	for idx, b := range c.occ[s] {
		if idx < n {
			sum += b
		}
	}
	return float64(sum) / (float64(n) * float64(c.bits[s]))
}

// Overbooked reports sample cycles where the recorded occupancy exceeds
// the structure's capacity — impossible in a correct accounting, so any
// hit indicates overlapping or double-counted intervals.
func (c *Campaign) Overbooked(s avf.Struct) int {
	n := 0
	for _, b := range c.occ[s] {
		if b > c.bits[s] {
			n++
		}
	}
	return n
}

// Outcomes simulates 'strikes' actual fault injections into structure s:
// for each strike a sample cycle and a bit are drawn uniformly, and the
// strike corrupts the program if the bit holds ACE state. It returns the
// number of corrupting strikes. With many strikes, corrupted/strikes
// converges to Estimate.
func (c *Campaign) Outcomes(s avf.Struct, cycles uint64, strikes int) (corrupted int) {
	n := c.Samples(cycles)
	if n == 0 || c.bits[s] == 0 {
		return 0
	}
	for i := 0; i < strikes; i++ {
		idx := c.rnd.Uint64n(n)
		bit := c.rnd.Uint64n(c.bits[s])
		if bit < c.ace[s][idx] {
			corrupted++
		}
	}
	return corrupted
}

// Events returns the number of intervals observed (diagnostics).
func (c *Campaign) Events() uint64 { return c.events }
