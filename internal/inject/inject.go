// Package inject implements statistical fault injection, the validation
// methodology the paper's §2 and §6 discuss as the (much more expensive)
// alternative to ACE analysis: strike random state bits at random cycles
// and observe the fraction of strikes that corrupt the program.
//
// A Campaign samples the machine on a systematic grid of cycles (every
// Every-th cycle, with a random phase). At each sample cycle the
// probability that a uniformly random bit strike corrupts the program is
//
//	P(corrupt | strike at cycle c) = ACE bits resident at c / total bits
//
// so the campaign's mean over sample cycles is an unbiased estimate of the
// structure's AVF — computed from an entirely different direction than the
// Tracker's residency accumulators. Agreement between the two validates
// the interval accounting end to end (intervals that overlapped,
// double-counted, or leaked past the end of the run would split the
// estimates apart). Campaign implements avf.Sink; attach it to a tracker
// before the run.
//
// The statistics layer (stats.go) turns the recorded grid into a
// confidence-bounded instrument: sequential strike sampling with a
// Wilson-score stopping rule, a per-structure / per-thread strike-outcome
// taxonomy, and live progress published through internal/telemetry.
package inject

import (
	"fmt"

	"smtavf/internal/avf"
	"smtavf/internal/obs"
	"smtavf/internal/rng"
	"smtavf/internal/telemetry"
)

// cell is the state recorded at one sample cycle of one structure: the
// occupied bits, the ACE bits, and the per-thread partition of the ACE
// bits (strike outcomes are attributed to the thread that owned the
// struck state).
type cell struct {
	occ uint64
	ace uint64
	// perThread[tid] is thread tid's share of the ACE bits; the slice
	// grows to the highest thread id seen.
	perThread []uint64
}

// Campaign collects strike samples. Create with NewCampaign, attach via
// Tracker.SetSink, run the simulation, then call Estimate/Outcomes (or
// RunStrikes for the confidence-bounded sequential experiment).
//
// Campaign implements avf.RebaseObserver: when the tracker rebases at the
// end of a warmup period, the campaign drops every sample collected so
// far and re-anchors its grid at the rebase cycle, so the estimates cover
// exactly the measurement window the tracker covers (pass the measured
// cycle count — Results.Cycles — to Estimate/Occupancy/Outcomes).
//
// A nil *Campaign is a valid detached campaign: the hot-path methods
// (Interval, Rebase) are nil-receiver no-ops, matching the pipetrace
// recorder convention, so call sites need no branching.
type Campaign struct {
	every      uint64 // sample grid pitch in cycles
	phase      uint64 // grid offset, drawn in [0, every)
	origin     uint64 // cycle the grid is anchored at (nonzero after a rebase)
	bits       [avf.NumStructs]uint64
	cells      [avf.NumStructs]map[uint64]*cell // sample index -> resident state
	protection [avf.NumStructs]Detection
	rnd        *rng.Source
	events     uint64

	// Live progress handles (PublishTelemetry); nil-receiver no-ops when
	// telemetry is not attached.
	telEvents  *telemetry.Counter
	telStrikes *telemetry.Gauge
	telRounds  *telemetry.Gauge
	telETA     *telemetry.Gauge
	telHW      [avf.NumStructs]*telemetry.Gauge
	telLogger  logger
	prog       *obs.Progress
}

// logger is the slog subset the campaign emits progress on.
type logger interface {
	Info(msg string, args ...any)
}

// NewCampaign builds a campaign sampling every 'every' cycles. bits gives
// each structure's total capacity (use the same values the Tracker was
// built with). seed fixes the grid phase and the Bernoulli outcome draws.
func NewCampaign(bits [avf.NumStructs]uint64, every uint64, seed uint64) (*Campaign, error) {
	if every == 0 {
		return nil, fmt.Errorf("inject: sampling pitch must be positive")
	}
	c := &Campaign{every: every, bits: bits, rnd: rng.New(seed)}
	c.phase = c.rnd.Uint64n(every)
	for s := range c.cells {
		c.cells[s] = make(map[uint64]*cell)
	}
	return c, nil
}

var (
	_ avf.Sink           = (*Campaign)(nil)
	_ avf.RebaseObserver = (*Campaign)(nil)
)

// Phase returns the random grid offset in [0, every) drawn at construction
// — the first value consumed from the campaign's seed (the seed-stability
// golden test pins it).
func (c *Campaign) Phase() uint64 { return c.phase }

// SetProtection declares per-structure error protection: strikes on ACE
// state in a protected structure are detected (parity: a detected
// unrecoverable error) or corrected (ECC) instead of silently corrupting
// the program. core/protection.go maps its ProtectionMode values onto
// Detection. Call before RunStrikes; the default is unprotected.
func (c *Campaign) SetProtection(p [avf.NumStructs]Detection) { c.protection = p }

// Protection returns the per-structure detection configuration.
func (c *Campaign) Protection() [avf.NumStructs]Detection { return c.protection }

// Rebase implements avf.RebaseObserver: warmup-era samples are discarded
// and the sample grid re-anchors at the rebase cycle, mirroring the
// tracker's accumulator reset.
func (c *Campaign) Rebase(cycle uint64) {
	if c == nil {
		return
	}
	c.origin = cycle
	for s := range c.cells {
		c.cells[s] = make(map[uint64]*cell)
	}
}

// Interval implements avf.Sink: it books the interval's bits into every
// sample cycle the interval covers. Cycles are re-expressed relative to
// the grid origin (the last rebase), matching the measured cycle counts
// the estimate queries use.
func (c *Campaign) Interval(s avf.Struct, tid int, bits, start, end uint64, ace bool) {
	if c == nil {
		return
	}
	if start < c.origin {
		start = c.origin
	}
	if end <= start {
		return
	}
	start -= c.origin
	end -= c.origin
	c.events++
	c.telEvents.Inc() // nil-receiver no-op without telemetry
	// First sample index at or after start.
	var idx uint64
	if start > c.phase {
		idx = (start - c.phase + c.every - 1) / c.every
	}
	for cyc := c.phase + idx*c.every; cyc < end; cyc += c.every {
		cl := c.cells[s][idx]
		if cl == nil {
			cl = &cell{}
			c.cells[s][idx] = cl
		}
		cl.occ += bits
		if ace {
			cl.ace += bits
			for len(cl.perThread) <= tid {
				cl.perThread = append(cl.perThread, 0)
			}
			cl.perThread[tid] += bits
		}
		idx++
	}
}

// Samples returns the number of sample cycles within a run of 'cycles'
// cycles.
func (c *Campaign) Samples(cycles uint64) uint64 {
	if cycles <= c.phase {
		return 0
	}
	return (cycles-c.phase-1)/c.every + 1
}

// Estimate returns the fault-injection AVF estimate for structure s over a
// run of 'cycles' cycles: the mean, over sample cycles, of the fraction of
// the structure's bits whose corruption would have mattered.
func (c *Campaign) Estimate(s avf.Struct, cycles uint64) float64 {
	n := c.Samples(cycles)
	if n == 0 || c.bits[s] == 0 {
		return 0
	}
	var sum uint64
	for idx, cl := range c.cells[s] {
		if idx < n {
			sum += cl.ace
		}
	}
	return float64(sum) / (float64(n) * float64(c.bits[s]))
}

// Occupancy returns the estimated fraction of (bits × cycles) holding any
// tracked state — the analogue of Tracker.Occupancy.
func (c *Campaign) Occupancy(s avf.Struct, cycles uint64) float64 {
	n := c.Samples(cycles)
	if n == 0 || c.bits[s] == 0 {
		return 0
	}
	var sum uint64
	for idx, cl := range c.cells[s] {
		if idx < n {
			sum += cl.occ
		}
	}
	return float64(sum) / (float64(n) * float64(c.bits[s]))
}

// Overbooked reports sample cycles where the recorded occupancy exceeds
// the structure's capacity — impossible in a correct accounting, so any
// hit indicates overlapping or double-counted intervals.
func (c *Campaign) Overbooked(s avf.Struct) int {
	n := 0
	for _, cl := range c.cells[s] {
		if cl.occ > c.bits[s] {
			n++
		}
	}
	return n
}

// Strike is one simulated fault injection: the struck structure, where and
// when the particle landed, and who owned the state it hit. It is the one
// public record every strike consumer shares — the statistics layer
// (RunStrikes) folds strikes into the outcome taxonomy, and the
// propagation tracer (internal/propagation) resolves each strike's victim
// uop and taint-tracks the corruption onward.
type Strike struct {
	// Struct is the struck structure.
	Struct avf.Struct
	// SampleIdx is the grid sample index the strike landed on, relative
	// to the campaign's origin (the last rebase).
	SampleIdx uint64
	// Cycle is the absolute simulation cycle of the strike:
	// origin + phase + SampleIdx*every.
	Cycle uint64
	// Bit is the struck bit's offset within the structure's capacity.
	Bit uint64
	// TID is the thread owning the struck ACE state, or -1 when the bit
	// held idle or un-ACE state (a masked strike).
	TID int
	// ThreadBit is the struck bit's offset within the owning thread's
	// ACE share at the sample cycle (meaningful only when TID >= 0) —
	// the deterministic handle victim resolution keys on.
	ThreadBit uint64
	// Outcome classifies the strike under the structure's configured
	// protection: Masked, SDC, DUE, or Corrected.
	Outcome Outcome
}

// Outcomes simulates 'strikes' actual fault injections into structure s:
// for each strike a sample cycle and a bit are drawn uniformly, and the
// strike corrupts the program if the bit holds ACE state. It returns the
// number of corrupting strikes. With many strikes, corrupted/strikes
// converges to Estimate. The draw order (sample index, then bit) is part
// of the campaign's deterministic contract — see the seed-stability
// golden test.
func (c *Campaign) Outcomes(s avf.Struct, cycles uint64, strikes int) (corrupted int) {
	n := c.Samples(cycles)
	if n == 0 || c.bits[s] == 0 {
		return 0
	}
	for i := 0; i < strikes; i++ {
		if c.strike(s, n).Outcome.Corrupting() {
			corrupted++
		}
	}
	return corrupted
}

// SampleStrikes draws n fault injections into structure s over a recorded
// run of 'cycles' cycles and returns the full Strike records. Each strike
// consumes exactly two rng values (sample index, then bit) from the
// campaign's stream — the same draws RunStrikes and Outcomes make — so a
// given seed produces one deterministic strike sequence across all three
// entry points; call SampleStrikes after RunStrikes to extend the stream,
// not to replay it. Structures with no recorded samples (zero capacity or
// an empty grid) return nil.
func (c *Campaign) SampleStrikes(s avf.Struct, cycles uint64, n int) []Strike {
	samples := c.Samples(cycles)
	if samples == 0 || c.bits[s] == 0 || n <= 0 {
		return nil
	}
	out := make([]Strike, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.strike(s, samples))
	}
	return out
}

// strike draws one (sample cycle, bit) pair for structure s — consuming
// exactly two rng values — and classifies the outcome, attributing ACE
// hits to the owning thread (TID -1 when no thread owns the struck bit).
func (c *Campaign) strike(s avf.Struct, samples uint64) Strike {
	idx := c.rnd.Uint64n(samples)
	bit := c.rnd.Uint64n(c.bits[s])
	st := Strike{
		Struct:    s,
		SampleIdx: idx,
		Cycle:     c.origin + c.phase + idx*c.every,
		Bit:       bit,
		TID:       -1,
		Outcome:   Masked,
	}
	cl := c.cells[s][idx]
	if cl == nil || bit >= cl.ace {
		return st // idle or un-ACE state: the strike is masked
	}
	tid := 0
	for _, share := range cl.perThread {
		if bit < share {
			break
		}
		bit -= share
		tid++
	}
	if tid >= len(cl.perThread) {
		tid = len(cl.perThread) - 1 // unreachable unless shares disagree with ace
	}
	st.TID = tid
	st.ThreadBit = bit
	st.Outcome = c.protection[s].outcome()
	return st
}

// Events returns the number of intervals observed (diagnostics).
func (c *Campaign) Events() uint64 { return c.events }
