package inject

import (
	"math"
	"strings"
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/obs"
	"smtavf/internal/telemetry"
)

// fill books a constant pattern into the campaign: structure s fully
// occupied, with aceBits of its bits ACE, split across threads by shares.
func fill(t *testing.T, c *Campaign, s avf.Struct, cycles uint64, shares map[int]uint64) {
	t.Helper()
	var occ uint64
	for tid, b := range shares {
		c.Interval(s, tid, b, 0, cycles, true)
		occ += b
	}
	if rest := c.bits[s] - occ; rest > 0 {
		c.Interval(s, 0, rest, 0, cycles, false)
	}
}

func TestZQuantile(t *testing.T) {
	cases := []struct {
		conf, want float64
	}{
		{0.90, 1.6448536},
		{0.95, 1.9599640},
		{0.99, 2.5758293},
		{0.999, 3.2905267},
	}
	for _, c := range cases {
		if got := zQuantile(c.conf); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("zQuantile(%.3f) = %.7f, want %.7f", c.conf, got, c.want)
		}
	}
	// Out-of-range confidence falls back to the 99% quantile.
	if got := zQuantile(1.5); math.Abs(got-2.5758293) > 1e-6 {
		t.Errorf("zQuantile(1.5) = %v, want the 99%% fallback", got)
	}
}

func TestWilson(t *testing.T) {
	// Against the standard worked example: 10/100 at 95%.
	lo, hi := Wilson(10, 100, 0.95)
	if math.Abs(lo-0.0552) > 5e-4 || math.Abs(hi-0.1744) > 5e-4 {
		t.Errorf("Wilson(10,100,.95) = [%.4f,%.4f], want ≈[0.0552,0.1744]", lo, hi)
	}
	// Degenerate counts stay in [0,1] and keep positive width.
	if lo, hi := Wilson(0, 50, 0.99); lo != 0 || hi <= 0 {
		t.Errorf("Wilson(0,50) = [%v,%v]", lo, hi)
	}
	if lo, hi := Wilson(50, 50, 0.99); hi != 1 || lo >= 1 {
		t.Errorf("Wilson(50,50) = [%v,%v]", lo, hi)
	}
	if lo, hi := Wilson(0, 0, 0.99); lo != 0 || hi != 1 {
		t.Errorf("Wilson(0,0) = [%v,%v], want the vacuous [0,1]", lo, hi)
	}
	// Interval contains the point estimate and narrows with n.
	_, hi1 := Wilson(100, 1000, 0.99)
	lo1, _ := Wilson(100, 1000, 0.99)
	lo2, hi2 := Wilson(1000, 10000, 0.99)
	if hi2-lo2 >= hi1-lo1 {
		t.Errorf("CI should narrow with n: %v vs %v", hi2-lo2, hi1-lo1)
	}
}

func TestDetectionOutcomes(t *testing.T) {
	if got := DetectNone.outcome(); got != SDC {
		t.Errorf("unprotected ACE hit = %v, want SDC", got)
	}
	if got := DetectOnly.outcome(); got != DUE {
		t.Errorf("parity ACE hit = %v, want DUE", got)
	}
	if got := DetectCorrect.outcome(); got != Corrected {
		t.Errorf("ECC ACE hit = %v, want corrected", got)
	}
	for _, o := range []Outcome{SDC, DUE, Corrected} {
		if !o.Corrupting() {
			t.Errorf("%v should count as an ACE hit", o)
		}
	}
	if Masked.Corrupting() {
		t.Error("masked strikes must not count as ACE hits")
	}
}

// TestRunStrikesTaxonomy books a deterministic 25%-ACE pattern and checks
// the sequential experiment recovers it, classifying per the configured
// protection.
func TestRunStrikesTaxonomy(t *testing.T) {
	var bits [avf.NumStructs]uint64
	bits[avf.IQ] = 1000
	bits[avf.ROB] = 1000
	bits[avf.Reg] = 1000
	c, err := NewCampaign(bits, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 64
	for _, s := range []avf.Struct{avf.IQ, avf.ROB, avf.Reg} {
		fill(t, c, s, cycles, map[int]uint64{0: 250})
	}
	var prot [avf.NumStructs]Detection
	prot[avf.ROB] = DetectOnly
	prot[avf.Reg] = DetectCorrect
	c.SetProtection(prot)

	st := c.RunStrikes(cycles, StopWhen(0.02, 1<<20))
	if !st.StoppedEarly {
		t.Fatalf("expected early stop, got %d rounds / %d strikes", st.Rounds, st.TotalStrikes)
	}
	if hw := st.MaxHalfWidth(); hw > 0.02 {
		t.Fatalf("stopped with max half-width %.4f > 0.02", hw)
	}
	checks := []struct {
		s    avf.Struct
		kind Outcome
	}{{avf.IQ, SDC}, {avf.ROB, DUE}, {avf.Reg, Corrected}}
	for _, chk := range checks {
		r := st.PerStruct[chk.s]
		if r.ACEStrikes() != r.Outcomes[chk.kind] {
			t.Errorf("%v: ACE strikes should all classify as %v: %+v", chk.s, chk.kind, r.Outcomes)
		}
		if math.Abs(r.AVF-0.25) > r.HalfWidth+0.01 {
			t.Errorf("%v: estimate %.4f implausibly far from the exact 0.25", chk.s, r.AVF)
		}
		if r.Lo > 0.25 || r.Hi < 0.25 {
			t.Errorf("%v: CI [%.4f,%.4f] excludes the exact AVF 0.25", chk.s, r.Lo, r.Hi)
		}
		var perThread uint64
		for _, n := range r.PerThread {
			perThread += n
		}
		if perThread != r.ACEStrikes() {
			t.Errorf("%v: per-thread counts sum to %d, want %d", chk.s, perThread, r.ACEStrikes())
		}
	}
	// Structures with no capacity draw nothing and stay vacuous.
	if st.PerStruct[avf.FU].Strikes != 0 {
		t.Errorf("FU has no bits but drew %d strikes", st.PerStruct[avf.FU].Strikes)
	}
	if !strings.Contains(st.Table(), "stopped early") {
		t.Error("Table should note the early stop")
	}
}

// TestRunStrikesPerThreadAttribution checks ACE strikes land on the
// owning thread in proportion to its share.
func TestRunStrikesPerThreadAttribution(t *testing.T) {
	var bits [avf.NumStructs]uint64
	bits[avf.IQ] = 1000
	c, err := NewCampaign(bits, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 16
	// Thread 0 owns 100 ACE bits, thread 1 owns 300.
	fill(t, c, avf.IQ, cycles, map[int]uint64{0: 100, 1: 300})
	st := c.RunStrikes(cycles, StopWhen(0.01, 1<<20))
	r := st.PerStruct[avf.IQ]
	if len(r.PerThread) != 2 {
		t.Fatalf("PerThread = %v, want 2 threads", r.PerThread)
	}
	ratio := float64(r.PerThread[1]) / float64(r.PerThread[0])
	if ratio < 2.0 || ratio > 4.5 {
		t.Errorf("thread shares 100:300 but strike counts %d:%d (ratio %.2f, want ≈3)",
			r.PerThread[0], r.PerThread[1], ratio)
	}
}

// TestRunStrikesRespectsCap: an unreachable CI target runs to MaxStrikes
// and reports no early stop.
func TestRunStrikesRespectsCap(t *testing.T) {
	var bits [avf.NumStructs]uint64
	bits[avf.IQ] = 100
	c, err := NewCampaign(bits, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, c, avf.IQ, 8, map[int]uint64{0: 50})
	st := c.RunStrikes(8, StopWhen(1e-6, 2000))
	if st.StoppedEarly {
		t.Error("cannot stop early with a 1e-6 half-width target")
	}
	if got := st.PerStruct[avf.IQ].Strikes; got != 2000 {
		t.Errorf("strikes = %d, want the 2000 cap", got)
	}
}

// TestRunStrikesDeterministic: identical seeds and grids give identical
// stats, including the taxonomy and per-thread splits.
func TestRunStrikesDeterministic(t *testing.T) {
	build := func() *Stats {
		var bits [avf.NumStructs]uint64
		bits[avf.IQ] = 512
		bits[avf.ROB] = 256
		c, err := NewCampaign(bits, 2, 42)
		if err != nil {
			t.Fatal(err)
		}
		fill(t, c, avf.IQ, 100, map[int]uint64{0: 128, 1: 64})
		fill(t, c, avf.ROB, 100, map[int]uint64{1: 32})
		return c.RunStrikes(100, StopWhen(0.03, 1<<16))
	}
	a, b := build(), build()
	if a.TotalStrikes != b.TotalStrikes || a.Rounds != b.Rounds {
		t.Fatalf("runs diverge: %d/%d vs %d/%d strikes/rounds", a.TotalStrikes, a.Rounds, b.TotalStrikes, b.Rounds)
	}
	for s := range a.PerStruct {
		if a.PerStruct[s].Outcomes != b.PerStruct[s].Outcomes {
			t.Errorf("struct %d outcome draws diverge: %v vs %v", s, a.PerStruct[s].Outcomes, b.PerStruct[s].Outcomes)
		}
	}
}

// TestPublishTelemetry: progress gauges appear in the collector snapshot
// after a strike run; a nil collector is a no-op.
func TestPublishTelemetry(t *testing.T) {
	var bits [avf.NumStructs]uint64
	bits[avf.IQ] = 100
	c, err := NewCampaign(bits, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New(telemetry.Options{})
	c.PublishTelemetry(col)
	fill(t, c, avf.IQ, 10, map[int]uint64{0: 25})
	st := c.RunStrikes(10, StopWhen(0.05, 1<<16))

	snap := col.Snapshot()
	if got := snap.Counters["inject.events"]; got != c.Events() {
		t.Errorf("inject.events = %d, want %d", got, c.Events())
	}
	if got := snap.Gauges["inject.strikes"]; got != float64(st.TotalStrikes) {
		t.Errorf("inject.strikes = %v, want %d", got, st.TotalStrikes)
	}
	if got := snap.Gauges["inject.rounds"]; got != float64(st.Rounds) {
		t.Errorf("inject.rounds = %v, want %d", got, st.Rounds)
	}
	if _, ok := snap.Gauges["inject.halfwidth.IQ"]; !ok {
		t.Error("per-structure half-width gauge missing from the snapshot")
	}
	if _, ok := snap.Gauges["inject.eta_strikes"]; !ok {
		t.Error("eta gauge missing from the snapshot")
	}

	// Detached publishing is a no-op, not a panic.
	var c2 *Campaign
	c2.PublishTelemetry(nil)
	c3, _ := NewCampaign(bits, 1, 9)
	c3.PublishTelemetry(nil)
	fill(t, c3, avf.IQ, 10, map[int]uint64{0: 25})
	c3.RunStrikes(10, StopWhen(0.05, 1<<16))
}

// TestTelemetryNameParity pins the migration contract of the campaign
// gauges: every legacy dotted name stays in the collector snapshot (the
// /debug/vars surface) AND registers on the obs registry (the
// /debug/metrics surface) under the same dotted family name.
func TestTelemetryNameParity(t *testing.T) {
	var bits [avf.NumStructs]uint64
	bits[avf.IQ] = 100
	c, err := NewCampaign(bits, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New(telemetry.Options{})
	c.PublishTelemetry(col)
	fill(t, c, avf.IQ, 10, map[int]uint64{0: 25})
	c.RunStrikes(10, StopWhen(0.05, 1<<16))

	names := []string{"inject.events", "inject.strikes", "inject.rounds", "inject.eta_strikes"}
	for _, s := range avf.Structs() {
		names = append(names, "inject.halfwidth."+s.String())
	}
	snap := col.Snapshot()
	reg := col.Registry()
	for _, name := range names {
		_, inCounters := snap.Counters[name]
		_, inGauges := snap.Gauges[name]
		if !inCounters && !inGauges {
			t.Errorf("legacy name %q missing from the collector snapshot", name)
		}
		if !reg.Has(name) {
			t.Errorf("name %q missing from the obs registry", name)
		}
	}
}

// TestStrikeProgress: a progress tracker attached to the collector tracks
// the strike phase through the stopping rule.
func TestStrikeProgress(t *testing.T) {
	var bits [avf.NumStructs]uint64
	bits[avf.IQ] = 100
	c, err := NewCampaign(bits, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New(telemetry.Options{})
	p := obs.NewProgress(obs.ProgressOptions{Heartbeat: -1, Registry: col.Registry()})
	col.SetProgress(p)
	c.PublishTelemetry(col)
	fill(t, c, avf.IQ, 10, map[int]uint64{0: 25})
	st := c.RunStrikes(10, StopWhen(0.05, 1<<16))

	snap := p.Snapshot()
	if snap.Phase != "strikes" {
		t.Fatalf("progress phase = %q, want strikes", snap.Phase)
	}
	if snap.Done != st.TotalStrikes {
		t.Fatalf("progress done = %d, want %d strikes", snap.Done, st.TotalStrikes)
	}
	// Converged: the stopping-rule ETA is zero, so done == total.
	if snap.Total != st.TotalStrikes || snap.Fraction != 1 {
		t.Fatalf("progress total/fraction = %d/%v, want %d/1", snap.Total, snap.Fraction, st.TotalStrikes)
	}
}
