// Package shard executes one logical simulation as several deterministic
// interval simulations ("shards") running concurrently, then merges their
// results into a single report.
//
// A trace-driven run is embarrassingly parallel in the interval dimension
// once two problems are solved: reconstructing the machine state at each
// interval boundary, and merging interval statistics without error. The
// engine solves the first with per-shard functional warmup — every shard
// builds a fresh, identically-seeded machine and replays its boundary
// prefix through the long-lived structures (caches, TLBs, predictors; see
// core.FunctionalWarmup) — and the second by summing raw integer counters
// (committed instructions, cycles, ACE bit-cycles, memory events) and
// recomputing every rate over the merged window (avf.Merge,
// core.MachineCounters.Stats).
//
// The result is exact in its counts (a sharded run commits exactly the
// instructions its plan assigns, cycle counts and IPC are the sums of real
// simulated intervals) and approximate in its AVF rates: the transient
// pipeline state at each boundary is refilled by detailed simulation
// rather than reconstructed, which perturbs residency accounting near the
// boundary. The error bound is documented and tested; see DefaultTolerance
// and docs/sharding.md.
package shard

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"smtavf/internal/core"
	"smtavf/internal/obs"
)

// SourceFactory builds a fresh, identically-seeded set of per-thread
// instruction sources. Every shard invokes it once, concurrently with
// other shards, so the returned sources must be independent instances:
// deterministic generators seeded the same way every call (core.Sources,
// trace.LoadTraceFile), never shared state.
type SourceFactory func() ([]core.Source, error)

// Options configure sharded execution.
type Options struct {
	// Shards is the number of intervals each thread's instruction quota is
	// split into. 1 means a single detailed run (no boundary error).
	Shards int
	// Workers bounds how many shards simulate concurrently; 0 means
	// GOMAXPROCS.
	Workers int
	// WarmupWindow bounds the functional warmup per shard: at most this
	// many trailing instructions of the skipped prefix are replayed
	// through the caches and predictors per thread (0 = the full prefix).
	// Shortening it trades boundary accuracy for startup cost; with
	// seekable traces the prefix before the window is skipped in O(1).
	WarmupWindow uint64
	// PartialTail classifies the in-flight pipeline drain at non-final
	// interval boundaries un-ACE (the successor interval re-simulates
	// those instructions) instead of the monolithic headed-fate rule. The
	// headed-fate default tracks the monolithic run measurably better —
	// the tail's extra ACE offsets the residency shortening of
	// re-simulated boundary instructions against warmed caches — so this
	// knob exists to study the boundary error, not to improve it.
	PartialTail bool
	// Obs, when non-nil, receives campaign observability: per-worker
	// phase spans (Engine.Timeline), shard metrics on the registry, and
	// shard-completion progress. Attaching it does not perturb results —
	// it watches the pool, not the simulated machines.
	Obs *obs.Observability
}

// Engine runs sharded simulations for one configuration and workload.
type Engine struct {
	cfg     core.Config
	factory SourceFactory
	opt     Options

	// Registry handles (nil-receiver no-ops when Obs is detached).
	cShards *obs.Counter
	hPhase  map[string]*obs.Histogram

	mu          sync.Mutex
	checkpoints []core.Checkpoint
	spans       []obs.Span
}

// spanPhases are the per-worker phases the timeline records, in shard
// execution order; "merge" runs once on the coordinating goroutine.
var spanPhases = []string{"sources", "warmup", "run", "merge"}

// New builds an engine. The configuration's Warmup is honoured by folding
// it into each shard's functional warmup (split evenly across threads);
// detailed-warmup semantics are only available from a monolithic run.
func New(cfg core.Config, factory SourceFactory, opt Options) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if factory == nil {
		return nil, fmt.Errorf("shard: nil source factory")
	}
	if opt.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least one shard, got %d", opt.Shards)
	}
	if opt.Workers < 0 {
		return nil, fmt.Errorf("shard: negative worker count %d", opt.Workers)
	}
	if opt.Workers == 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{cfg: cfg, factory: factory, opt: opt, hPhase: map[string]*obs.Histogram{}}
	if o := opt.Obs; o != nil && o.Registry != nil {
		e.cShards = o.Registry.Counter("shard.shards_done", "shard intervals completed")
		o.Registry.Gauge("shard.workers", "size of the shard worker pool").SetUint(uint64(opt.Workers))
		for _, phase := range spanPhases {
			e.hPhase[phase] = o.Registry.Histogram("shard.phase_seconds",
				"wall seconds per shard phase", obs.DefaultDurationBuckets,
				obs.Label{Name: "phase", Value: phase})
		}
	}
	return e, nil
}

// Run splits total committed instructions evenly across threads (low tids
// take the remainder) and runs the per-thread quotas sharded. Note the
// stop rule: unlike core.Limits.TotalInstructions, which lets thread
// progress float with machine throughput, a sharded run must fix each
// thread's instruction span up front so interval boundaries are
// deterministic. Every thread therefore commits exactly its quota,
// regardless of shard count — which is what makes monolithic (Shards: 1)
// and sharded runs of the same plan comparable instruction-for-instruction.
func (e *Engine) Run(total uint64) (*core.Results, error) {
	if total == 0 {
		return nil, fmt.Errorf("shard: need a positive instruction total")
	}
	return e.RunPerThread(splitEven(total, e.cfg.Threads))
}

// RunPerThread runs with explicit per-thread instruction quotas, each
// split into Options.Shards intervals.
func (e *Engine) RunPerThread(quotas []uint64) (*core.Results, error) {
	plans, err := plan(quotas, e.cfg.Threads, e.opt.Shards)
	if err != nil {
		return nil, err
	}
	warm := splitEven(e.cfg.Warmup, e.cfg.Threads)

	var prog *obs.Progress
	if e.opt.Obs != nil {
		prog = e.opt.Obs.Progress
		if r := e.opt.Obs.Registry; r != nil {
			r.Gauge("shard.shards", "shard intervals in the current plan").SetUint(uint64(len(plans)))
		}
	}
	prog.Phase("shards", uint64(len(plans)))

	// A fixed pool of identified workers (rather than a goroutine per
	// shard behind a semaphore) so the utilization timeline can attribute
	// each phase span to the worker that ran it. Shards are handed out in
	// plan order; results land at their plan index, so the merge — and
	// with it the final report — is independent of scheduling.
	results := make([]*core.Results, len(plans))
	checkpoints := make([]core.Checkpoint, len(plans))
	errs := make([]error, len(plans))
	base := time.Now()
	e.mu.Lock()
	e.spans = nil
	e.mu.Unlock()
	var done, cyclesSum uint64
	var progMu sync.Mutex
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := e.opt.Workers
	if workers > len(plans) {
		workers = len(plans)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := range jobs {
				res, cp, err := e.runShard(w, j, base, plans[j], warm, e.opt.PartialTail && j < len(plans)-1)
				if err != nil {
					errs[j] = fmt.Errorf("shard %d/%d: %w", j, len(plans), err)
					continue
				}
				results[j] = res
				checkpoints[j] = cp
				e.cShards.Inc()
				progMu.Lock()
				done++
				cyclesSum += res.Cycles
				prog.Observe(done, cyclesSum)
				progMu.Unlock()
			}
		}(w)
	}
	for j := range plans {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	mergeStart := time.Since(base)
	e.mu.Lock()
	e.checkpoints = checkpoints
	e.mu.Unlock()
	merged := mergeResults(results)
	e.addSpan(obs.Span{Worker: -1, Shard: -1, Phase: "merge", Start: mergeStart, End: time.Since(base)})
	e.hPhase["merge"].Observe((time.Since(base) - mergeStart).Seconds())
	return merged, nil
}

// addSpan appends one phase span to the run's timeline; detached engines
// (no Options.Obs) record nothing.
func (e *Engine) addSpan(s obs.Span) {
	if e.opt.Obs == nil {
		return
	}
	e.mu.Lock()
	e.spans = append(e.spans, s)
	e.mu.Unlock()
}

// Timeline returns the per-worker phase spans of the most recent
// RunPerThread, suitable for obs.WriteChromeSpans. Spans are only
// recorded while Options.Obs is attached.
func (e *Engine) Timeline() []obs.Span {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]obs.Span(nil), e.spans...)
}

// runShard builds a fresh machine, functionally warms it to the shard's
// interval boundary, and simulates the interval in detail. worker and
// base attribute the phase spans on the utilization timeline.
func (e *Engine) runShard(worker, shard int, base time.Time, iv interval, warm []uint64, partialTail bool) (*core.Results, core.Checkpoint, error) {
	phaseStart := time.Since(base)
	endPhase := func(name string) {
		end := time.Since(base)
		e.addSpan(obs.Span{Worker: worker, Shard: shard, Phase: name, Start: phaseStart, End: end})
		e.hPhase[name].Observe((end - phaseStart).Seconds())
		phaseStart = end
	}

	srcs, err := e.factory()
	if err != nil {
		return nil, core.Checkpoint{}, fmt.Errorf("building sources: %w", err)
	}
	cfg := e.cfg
	cfg.Warmup = 0 // folded into the functional skip below
	proc, err := core.NewFromSources(cfg, srcs)
	if err != nil {
		return nil, core.Checkpoint{}, err
	}
	endPhase("sources")

	skip := make([]uint64, len(iv.start))
	for t := range skip {
		skip[t] = warm[t] + iv.start[t]
	}
	if err := proc.FunctionalWarmup(skip, e.opt.WarmupWindow); err != nil {
		return nil, core.Checkpoint{}, err
	}
	cp := proc.Checkpoint()
	endPhase("warmup")

	res, err := proc.Run(core.Limits{PerThread: iv.length, PartialTail: partialTail})
	if err != nil {
		return nil, core.Checkpoint{}, err
	}
	endPhase("run")
	return res, cp, nil
}

// Checkpoints returns the interval-boundary checkpoints of the most recent
// run, one per shard in interval order. Two runs of the same engine
// produce equal checkpoints — the determinism the shard tests assert.
func (e *Engine) Checkpoints() []core.Checkpoint {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]core.Checkpoint, len(e.checkpoints))
	copy(out, e.checkpoints)
	return out
}
