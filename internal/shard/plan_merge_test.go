package shard

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"smtavf/internal/core"
)

// runIntervals simulates each planned interval independently — the same
// per-interval results the engine's pool produces, exposed so the merge
// tests can recombine arbitrary subsets.
func runIntervals(t *testing.T, eng *Engine, plans []interval) ([]*core.Results, []core.Checkpoint) {
	t.Helper()
	warm := splitEven(eng.cfg.Warmup, eng.cfg.Threads)
	base := time.Now()
	parts := make([]*core.Results, len(plans))
	cps := make([]core.Checkpoint, len(plans))
	for j, iv := range plans {
		res, cp, err := eng.runShard(0, j, base, iv, warm, false)
		if err != nil {
			t.Fatalf("interval %d: %v", j, err)
		}
		parts[j] = res
		cps[j] = cp
	}
	return parts, cps
}

// TestPlanSingleShard: one shard degenerates to the monolithic plan — a
// single interval starting at zero covering each thread's full quota —
// and merging a single part is the identity, not a recomputation.
func TestPlanSingleShard(t *testing.T) {
	quotas := []uint64{10, 7, 1}
	ivs, err := plan(quotas, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 {
		t.Fatalf("single-shard plan has %d intervals", len(ivs))
	}
	if !reflect.DeepEqual(ivs[0].start, []uint64{0, 0, 0}) {
		t.Errorf("single-shard starts %v, want zeros", ivs[0].start)
	}
	if !reflect.DeepEqual(ivs[0].length, quotas) {
		t.Errorf("single-shard lengths %v, want the quotas %v", ivs[0].length, quotas)
	}

	res := &core.Results{Threads: 3}
	if got := mergeResults([]*core.Results{res}); got != res {
		t.Error("merging one part did not return it unchanged")
	}
}

// TestPlanTrailingInterval pins the boundary of the zero-length rule: with
// the remainder assigned to the low indices the trailing interval is the
// short one, but it may never be empty — a quota of exactly `shards`
// instructions still yields all-length-1 intervals, and one instruction
// fewer is rejected naming the offending thread (a zero-length interval
// cannot be expressed as a per-thread limit, where 0 means unlimited).
func TestPlanTrailingInterval(t *testing.T) {
	ivs, err := plan([]uint64{4, 9}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	last := ivs[len(ivs)-1]
	if !reflect.DeepEqual(last.start, []uint64{3, 7}) || !reflect.DeepEqual(last.length, []uint64{1, 2}) {
		t.Errorf("trailing interval start %v length %v, want {3 7} {1 2}", last.start, last.length)
	}
	// Intervals tile each thread's quota: contiguous, nonempty, exact.
	quotas := []uint64{4, 9}
	for tid, q := range quotas {
		var pos uint64
		for j, iv := range ivs {
			if iv.start[tid] != pos {
				t.Errorf("thread %d interval %d starts at %d, want %d", tid, j, iv.start[tid], pos)
			}
			if iv.length[tid] == 0 {
				t.Errorf("thread %d interval %d has zero length", tid, j)
			}
			pos += iv.length[tid]
		}
		if pos != q {
			t.Errorf("thread %d intervals cover %d instructions, want %d", tid, pos, q)
		}
	}

	_, err = plan([]uint64{4, 3}, 2, 4)
	if err == nil || !strings.Contains(err.Error(), "thread 1") {
		t.Errorf("quota below shard count: err = %v, want rejection naming thread 1", err)
	}
}

// TestMergePartialShardSet: merging the full interval set reproduces the
// engine's own report bit-for-bit, and merging only a completed prefix —
// what a cancelled or interrupted campaign leaves behind — still sums
// every integer counter exactly and recomputes the rates over the partial
// window.
func TestMergePartialShardSet(t *testing.T) {
	cfg := core.DefaultConfig(4)
	eng, err := New(cfg, mixFactory(t, cfg, equivMix), Options{Shards: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	quotas := splitEven(equivTotal, cfg.Threads)
	plans, err := plan(quotas, cfg.Threads, 4)
	if err != nil {
		t.Fatal(err)
	}
	parts, _ := runIntervals(t, eng, plans)

	full, err := eng.RunPerThread(quotas)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mergeResults(parts), full) {
		t.Fatal("merge of the independently-run intervals diverges from the engine's report")
	}

	done := parts[:2]
	partial := mergeResults(done)
	var wantCycles, wantTotal uint64
	wantCommitted := make([]uint64, cfg.Threads)
	for j, p := range done {
		wantCycles += p.Cycles
		wantTotal += p.Total
		for tid := range wantCommitted {
			wantCommitted[tid] += plans[j].length[tid]
		}
	}
	if partial.Cycles != wantCycles || partial.Total != wantTotal {
		t.Errorf("partial merge cycles/total = %d/%d, want %d/%d",
			partial.Cycles, partial.Total, wantCycles, wantTotal)
	}
	if !reflect.DeepEqual(partial.Committed, wantCommitted) {
		t.Errorf("partial merge commits %v, want the planned interval lengths %v",
			partial.Committed, wantCommitted)
	}
	for s, v := range partial.AVF.Total {
		if v < 0 || v > 1 {
			t.Errorf("partial merge AVF[%d] = %v outside [0, 1]", s, v)
		}
	}
	if partial.IPC() <= 0 {
		t.Errorf("partial merge IPC = %v, want positive", partial.IPC())
	}
}

// TestCheckpointResumeDeterminism is the property avfd's restart path
// leans on: the plan is a pure function of (quotas, shards), and a fresh
// engine re-running only the not-yet-done suffix intervals reproduces
// them — same boundary checkpoints, and a combined prefix+suffix merge
// bit-identical to the uninterrupted run.
func TestCheckpointResumeDeterminism(t *testing.T) {
	cfg := core.DefaultConfig(4)
	quotas := splitEven(equivTotal, cfg.Threads)
	plansA, err := plan(quotas, cfg.Threads, 4)
	if err != nil {
		t.Fatal(err)
	}
	plansB, err := plan(quotas, cfg.Threads, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plansA, plansB) {
		t.Fatal("identical (quotas, shards) produced different plans")
	}

	engA, err := New(cfg, mixFactory(t, cfg, equivMix), Options{Shards: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parts, cps := runIntervals(t, engA, plansA)

	// "Restart": a new engine picks up at interval 2 with no memory of the
	// first process beyond the deterministic plan.
	engB, err := New(cfg, mixFactory(t, cfg, equivMix), Options{Shards: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	resumed, resumedCPs := runIntervals(t, engB, plansA[2:])
	if !reflect.DeepEqual(resumedCPs, cps[2:]) {
		t.Error("resumed intervals reconstructed different boundary checkpoints")
	}

	combined := append(append([]*core.Results(nil), parts[:2]...), resumed...)
	if !reflect.DeepEqual(mergeResults(combined), mergeResults(parts)) {
		t.Error("prefix + resumed suffix merge diverges from the uninterrupted merge")
	}
}
