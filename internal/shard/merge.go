package shard

import (
	"smtavf/internal/avf"
	"smtavf/internal/core"
)

// DefaultTolerance is the documented per-structure |ΔAVF| bound between a
// monolithic run and a sharded run of the same plan, for intervals of at
// least 5k committed instructions per thread with full-prefix functional
// warmup (or a WarmupWindow of at least 4096). The shard-equivalence test
// asserts it; docs/sharding.md records the measurements behind it (worst
// observed 0.058 at 5k-instruction intervals, tightening to 0.022 at 10k
// and 0.017 at 20k). The dominant error terms are the transient pipeline
// state (IQ/ROB/LSQ/register residency) that refills at each boundary and
// the wrong-path history functional warmup cannot replay.
const DefaultTolerance = 0.08

// mergeResults combines per-interval results into one report over the
// concatenated run. Integer counters (cycles, commits, thread and machine
// event counts, ACE bit-cycles) are summed exactly; every rate — IPC,
// miss rates, utilization, AVF — is recomputed from the sums, so the
// merge itself introduces no error. Phase samples keep their per-interval
// values with cycle offsets rebased onto the merged timeline.
func mergeResults(parts []*core.Results) *core.Results {
	if len(parts) == 1 {
		return parts[0]
	}
	first := parts[0]
	m := &core.Results{
		Threads:   first.Threads,
		Policy:    first.Policy,
		Committed: make([]uint64, len(first.Committed)),
		Bits:      first.Bits,
		Thread:    make([]core.ThreadStats, len(first.Thread)),
		Counters:  core.MachineCounters{FUUnits: first.Counters.FUUnits},
	}
	reports := make([]avf.Report, len(parts))
	for i, p := range parts {
		m.Cycles += p.Cycles
		m.Total += p.Total
		for t := range p.Committed {
			m.Committed[t] += p.Committed[t]
		}
		for t := range p.Thread {
			if i == 0 {
				m.Thread[t] = p.Thread[t]
			} else {
				m.Thread[t] = m.Thread[t].Plus(p.Thread[t])
			}
		}
		m.Counters = m.Counters.Plus(p.Counters)
		reports[i] = p.AVF
	}
	var offset uint64
	for _, p := range parts {
		for _, ph := range p.Phases {
			ph.Cycle += offset
			m.Phases = append(m.Phases, ph)
		}
		offset += p.Cycles
	}
	m.AVF = avf.Merge(m.Bits, reports...)
	m.Machine = m.Counters.Stats(m.Cycles)
	return m
}

// MaxAVFDelta returns the largest per-structure |ΔAVF| between two runs
// and the structure where it occurs — the quantity the equivalence
// tolerance bounds.
func MaxAVFDelta(a, b *core.Results) (avf.Struct, float64) {
	var worst avf.Struct
	var max float64
	for s := avf.Struct(0); s < avf.NumStructs; s++ {
		d := a.AVF.Total[s] - b.AVF.Total[s]
		if d < 0 {
			d = -d
		}
		if d > max {
			max, worst = d, s
		}
	}
	return worst, max
}
