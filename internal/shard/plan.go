package shard

import "fmt"

// interval is one shard's slice of the run: for every thread, the number
// of committed instructions preceding the interval (its functional-warmup
// skip) and the number it must commit in detail.
type interval struct {
	start  []uint64 // per-thread committed-instruction boundary
	length []uint64 // per-thread detailed quota
}

// splitEven distributes total over n bins, remainder to the low indices.
func splitEven(total uint64, n int) []uint64 {
	out := make([]uint64, n)
	if n == 0 {
		return out
	}
	q, r := total/uint64(n), total%uint64(n)
	for i := range out {
		out[i] = q
		if uint64(i) < r {
			out[i]++
		}
	}
	return out
}

// plan cuts the per-thread quotas into shards intervals with fixed
// uop-count boundaries: thread t's quota is split as evenly as integer
// arithmetic allows (remainder to the early intervals), and interval j
// starts where interval j-1 ends. The boundaries depend only on (quotas,
// shards) — never on simulation outcomes — which is what makes the plan,
// and therefore the whole sharded run, deterministic.
func plan(quotas []uint64, threads, shards int) ([]interval, error) {
	if len(quotas) != threads {
		return nil, fmt.Errorf("shard: %d quotas for %d threads", len(quotas), threads)
	}
	for t, q := range quotas {
		if q == 0 {
			return nil, fmt.Errorf("shard: thread %d has no instruction quota", t)
		}
		if uint64(shards) > q {
			// A zero-length interval cannot be expressed as a per-thread
			// limit (0 means unlimited), and such a run gains nothing from
			// sharding anyway.
			return nil, fmt.Errorf("shard: %d shards exceed thread %d's quota of %d instructions", shards, t, q)
		}
	}
	out := make([]interval, shards)
	starts := make([]uint64, threads)
	for j := range out {
		iv := interval{
			start:  make([]uint64, threads),
			length: make([]uint64, threads),
		}
		copy(iv.start, starts)
		for t, q := range quotas {
			l := q / uint64(shards)
			if uint64(j) < q%uint64(shards) {
				l++
			}
			iv.length[t] = l
			starts[t] += l
		}
		out[j] = iv
	}
	return out, nil
}
