package shard

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"smtavf/internal/avf"
	"smtavf/internal/core"
	"smtavf/internal/obs"
	"smtavf/internal/trace"
	"smtavf/internal/workload"
)

// equivMix is the fixed 4-thread mix the equivalence contract is asserted
// on (two CPU-bound, one MEM-bound, one in between — the boundary error is
// worst when a memory-bound thread clogs the machine).
var equivMix = []string{"gcc", "mcf", "vpr", "perlbmk"}

// equivTotal gives 5k committed instructions per thread per shard at
// Shards: 4 — the floor of the documented tolerance contract.
const equivTotal = uint64(80_000)

func mixFactory(t testing.TB, cfg core.Config, names []string) SourceFactory {
	t.Helper()
	return func() ([]core.Source, error) {
		ps := make([]trace.Profile, len(names))
		for i, n := range names {
			p, err := workload.Profile(n)
			if err != nil {
				return nil, err
			}
			ps[i] = p
		}
		return core.Sources(cfg, ps)
	}
}

func run(t *testing.T, opt Options, total uint64) (*Engine, *core.Results) {
	t.Helper()
	cfg := core.DefaultConfig(4)
	eng, err := New(cfg, mixFactory(t, cfg, equivMix), opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(total)
	if err != nil {
		t.Fatal(err)
	}
	return eng, res
}

// TestShardEquivalence is the error-bound contract of docs/sharding.md: a
// 4-shard run commits exactly the same instructions as the monolithic
// (single-shard) run of the same plan, and every structure's AVF agrees
// within DefaultTolerance.
func TestShardEquivalence(t *testing.T) {
	_, mono := run(t, Options{Shards: 1, Workers: 1}, equivTotal)
	_, sharded := run(t, Options{Shards: 4}, equivTotal)

	if mono.Total != equivTotal || sharded.Total != equivTotal {
		t.Fatalf("committed totals: mono %d, sharded %d, want %d", mono.Total, sharded.Total, equivTotal)
	}
	if !reflect.DeepEqual(mono.Committed, sharded.Committed) {
		t.Fatalf("per-thread commits diverge: mono %v, sharded %v", mono.Committed, sharded.Committed)
	}
	for tid, c := range sharded.Committed {
		if want := equivTotal / 4; c != want {
			t.Errorf("thread %d committed %d, want %d", tid, c, want)
		}
	}
	for s := avf.Struct(0); s < avf.NumStructs; s++ {
		d := sharded.AVF.Total[s] - mono.AVF.Total[s]
		if d < 0 {
			d = -d
		}
		if d > DefaultTolerance {
			t.Errorf("%s: |ΔAVF| = %.4f exceeds tolerance %.3f (mono %.4f, sharded %.4f)",
				s, d, DefaultTolerance, mono.AVF.Total[s], sharded.AVF.Total[s])
		}
	}
	if st, d := MaxAVFDelta(mono, sharded); d > DefaultTolerance {
		t.Errorf("MaxAVFDelta = %.4f at %s, want <= %.3f", d, st, DefaultTolerance)
	}
	// IPC must come from real simulated cycles, in the same ballpark.
	if ratio := sharded.IPC() / mono.IPC(); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("IPC ratio %.3f outside [0.9, 1.1] (mono %.4f, sharded %.4f)", ratio, mono.IPC(), sharded.IPC())
	}
}

// TestShardEquivalenceWindowed asserts the same contract with a bounded
// warmup window at the documented 4096-instruction floor.
func TestShardEquivalenceWindowed(t *testing.T) {
	_, mono := run(t, Options{Shards: 1, Workers: 1}, equivTotal)
	_, windowed := run(t, Options{Shards: 4, WarmupWindow: 4096}, equivTotal)
	if !reflect.DeepEqual(mono.Committed, windowed.Committed) {
		t.Fatalf("per-thread commits diverge: mono %v, windowed %v", mono.Committed, windowed.Committed)
	}
	if st, d := MaxAVFDelta(mono, windowed); d > DefaultTolerance {
		t.Errorf("windowed MaxAVFDelta = %.4f at %s, want <= %.3f", d, st, DefaultTolerance)
	}
}

// TestShardDeterminism: two sharded runs of the same plan produce
// bit-identical results and checkpoints, regardless of worker count.
func TestShardDeterminism(t *testing.T) {
	engA, a := run(t, Options{Shards: 4, Workers: 1}, equivTotal)
	engB, b := run(t, Options{Shards: 4, Workers: 4}, equivTotal)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("results differ between identical sharded runs")
	}
	cpA, cpB := engA.Checkpoints(), engB.Checkpoints()
	if len(cpA) != 4 {
		t.Fatalf("got %d checkpoints, want 4", len(cpA))
	}
	if !reflect.DeepEqual(cpA, cpB) {
		t.Fatalf("checkpoints differ between identical sharded runs")
	}
	// Checkpoints record the planned interval boundaries.
	for j, cp := range cpA {
		for tid, seq := range cp.StreamSeq {
			if want := uint64(j) * equivTotal / 16; seq != want {
				t.Errorf("shard %d thread %d: boundary seq %d, want %d", j, tid, seq, want)
			}
		}
	}
	// Interval boundaries carry real reconstructed state: after the first
	// shard the digests must differ from the cold-start checkpoint.
	if reflect.DeepEqual(cpA[0].DL1, cpA[1].DL1) && reflect.DeepEqual(cpA[0].Gshare, cpA[1].Gshare) {
		t.Errorf("warmup left no trace in shard 1's checkpoint: %+v", cpA[1])
	}
}

// TestEngineMatchesDirectRun: with Shards: 1 the engine is exactly a
// monolithic per-thread-quota run — bit-identical results, no engine
// overhead or semantic drift.
func TestEngineMatchesDirectRun(t *testing.T) {
	cfg := core.DefaultConfig(4)
	factory := mixFactory(t, cfg, equivMix)
	_, engRes := run(t, Options{Shards: 1, Workers: 1}, equivTotal)

	srcs, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	proc, err := core.NewFromSources(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	quotas := splitEven(equivTotal, cfg.Threads)
	direct, err := proc.Run(core.Limits{PerThread: quotas})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(engRes, direct) {
		t.Fatalf("engine Shards:1 diverges from a direct core run")
	}
}

// TestPartialTail: the study knob flips the boundary bias — classifying
// drained tails un-ACE must not increase any structure's ACE numerator.
func TestPartialTail(t *testing.T) {
	_, headed := run(t, Options{Shards: 4}, equivTotal)
	_, partial := run(t, Options{Shards: 4, PartialTail: true}, equivTotal)
	if !reflect.DeepEqual(headed.Committed, partial.Committed) {
		t.Fatalf("commit counts changed with PartialTail: %v vs %v", headed.Committed, partial.Committed)
	}
	for s := avf.Struct(0); s < avf.NumStructs; s++ {
		var h, p uint64
		for tid := 0; tid < headed.Threads; tid++ {
			h += headed.AVF.ACE[tid][s]
			p += partial.AVF.ACE[tid][s]
		}
		if p > h {
			t.Errorf("%s: PartialTail raised ACE bit-cycles %d > %d", s, p, h)
		}
	}
}

func TestMergeReports(t *testing.T) {
	var bits [avf.NumStructs]uint64
	for s := range bits {
		bits[s] = 100
	}
	a := avf.Report{
		Cycles: 50, Threads: 2,
		ACE:   [][avf.NumStructs]uint64{{1000}, {500}},
		UnACE: [][avf.NumStructs]uint64{{200}, {300}},
	}
	b := avf.Report{
		Cycles: 150, Threads: 2,
		ACE:   [][avf.NumStructs]uint64{{2000}, {1500}},
		UnACE: [][avf.NumStructs]uint64{{100}, {400}},
	}
	m := avf.Merge(bits, a, b)
	if m.Cycles != 200 {
		t.Fatalf("merged cycles %d, want 200", m.Cycles)
	}
	if got, want := m.ACE[0][0], uint64(3000); got != want {
		t.Errorf("merged ACE[0][0] = %d, want %d", got, want)
	}
	// AVF(0) = (3000+2000) / (100 × 200)
	if got, want := m.Total[0], 0.25; got != want {
		t.Errorf("merged AVF = %v, want %v", got, want)
	}
	// Occ(0) = (3000+2000+300+700) / (100 × 200)
	if got, want := m.Occ[0], 0.3; got != want {
		t.Errorf("merged occupancy = %v, want %v", got, want)
	}
	if got, want := m.PerThread[1][0], 2000.0/20000; got != want {
		t.Errorf("merged per-thread AVF = %v, want %v", got, want)
	}
}

func TestPlan(t *testing.T) {
	ivs, err := plan([]uint64{10, 7}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := [][]uint64{{4, 3}, {3, 2}, {3, 2}}
	wantStart := [][]uint64{{0, 0}, {4, 3}, {7, 5}}
	for j, iv := range ivs {
		if !reflect.DeepEqual(iv.length, wantLen[j]) {
			t.Errorf("interval %d lengths %v, want %v", j, iv.length, wantLen[j])
		}
		if !reflect.DeepEqual(iv.start, wantStart[j]) {
			t.Errorf("interval %d starts %v, want %v", j, iv.start, wantStart[j])
		}
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := plan([]uint64{10}, 2, 2); err == nil {
		t.Error("quota/thread count mismatch accepted")
	}
	if _, err := plan([]uint64{10, 0}, 2, 2); err == nil {
		t.Error("zero quota accepted")
	}
	if _, err := plan([]uint64{10, 3}, 2, 4); err == nil {
		t.Error("shards > quota accepted")
	}
}

func TestSplitEven(t *testing.T) {
	if got := splitEven(10, 4); !reflect.DeepEqual(got, []uint64{3, 3, 2, 2}) {
		t.Errorf("splitEven(10, 4) = %v", got)
	}
	if got := splitEven(0, 2); !reflect.DeepEqual(got, []uint64{0, 0}) {
		t.Errorf("splitEven(0, 2) = %v", got)
	}
}

func TestEngineErrors(t *testing.T) {
	cfg := core.DefaultConfig(2)
	factory := mixFactory(t, cfg, []string{"gcc", "mcf"})
	if _, err := New(cfg, nil, Options{Shards: 2}); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := New(cfg, factory, Options{Shards: 0}); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := New(cfg, factory, Options{Shards: 2, Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
	eng, err := New(cfg, factory, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(0); err == nil {
		t.Error("zero total accepted")
	}
	if _, err := eng.RunPerThread([]uint64{1000}); err == nil {
		t.Error("short quota slice accepted")
	}
	if _, err := eng.RunPerThread([]uint64{1, 1000}); err == nil {
		t.Error("quota below shard count accepted")
	}
}

// TestShardSpeedup asserts the ≥2.5× wall-clock speedup acceptance
// criterion: 4 workers vs 1 worker on a 4-shard-per-thread plan. Timing
// assertions are inherently load-sensitive, so the failure mode is opt-in:
// set SMTAVF_ASSERT_SPEEDUP=1 (the CI shard-equivalence job does, running
// this test serially on a multi-core runner). Without it the measurement
// is logged but not enforced.
func TestShardSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const total = 16 * 20_000 // 4 threads × 4 shards × 20k instructions

	start := time.Now()
	_, _ = run(t, Options{Shards: 1, Workers: 1}, total)
	mono := time.Since(start)

	start = time.Now()
	_, _ = run(t, Options{Shards: 4, Workers: 4}, total)
	parallel := time.Since(start)

	speedup := float64(mono) / float64(parallel)
	t.Logf("monolithic: %v, 4 shards × 4 workers: %v, speedup %.2fx", mono, parallel, speedup)
	if os.Getenv("SMTAVF_ASSERT_SPEEDUP") == "" {
		return
	}
	if speedup < 2.5 {
		t.Errorf("4-worker speedup over monolithic %.2fx, want >= 2.5x", speedup)
	}
}

// TestObservability: an attached obs.Observability yields a per-worker
// phase timeline, shard metrics on the registry, completion progress —
// and bit-identical results to a detached run.
func TestObservability(t *testing.T) {
	cfg := core.DefaultConfig(4)
	reg := obs.NewRegistry()
	prog := obs.NewProgress(obs.ProgressOptions{Heartbeat: -1, Registry: reg})
	o := &obs.Observability{Registry: reg, Progress: prog}
	eng, err := New(cfg, mixFactory(t, cfg, equivMix), Options{Shards: 4, Workers: 2, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(equivTotal)
	if err != nil {
		t.Fatal(err)
	}
	_, plain := run(t, Options{Shards: 4, Workers: 2}, equivTotal)
	if !reflect.DeepEqual(res, plain) {
		t.Fatalf("observability perturbed the results")
	}

	// Timeline: 4 shards × 3 phases + 1 merge span, workers in [0, 2),
	// every span well-formed, and the whole thing exports as valid JSON.
	spans := eng.Timeline()
	if len(spans) != 4*3+1 {
		t.Fatalf("timeline has %d spans, want 13: %+v", len(spans), spans)
	}
	perShard := map[int]map[string]bool{}
	for _, s := range spans {
		if s.End < s.Start {
			t.Errorf("span ends before it starts: %+v", s)
		}
		if s.Phase == "merge" {
			if s.Worker != -1 || s.Shard != -1 {
				t.Errorf("merge span attributed to a worker: %+v", s)
			}
			continue
		}
		if s.Worker < 0 || s.Worker >= 2 {
			t.Errorf("span worker out of pool range: %+v", s)
		}
		if perShard[s.Shard] == nil {
			perShard[s.Shard] = map[string]bool{}
		}
		perShard[s.Shard][s.Phase] = true
	}
	for j := 0; j < 4; j++ {
		for _, phase := range []string{"sources", "warmup", "run"} {
			if !perShard[j][phase] {
				t.Errorf("shard %d missing %s span", j, phase)
			}
		}
	}
	var b strings.Builder
	if err := obs.WriteChromeSpans(&b, spans); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(b.String())) {
		t.Fatalf("timeline export is not valid JSON")
	}

	// Registry: counts and pool shape.
	if got := reg.Counter("shard.shards_done", "").Value(); got != 4 {
		t.Errorf("shard.shards_done = %d, want 4", got)
	}
	if got := reg.Gauge("shard.shards", "").Value(); got != 4 {
		t.Errorf("shard.shards = %v, want 4", got)
	}
	if got := reg.Gauge("shard.workers", "").Value(); got != 2 {
		t.Errorf("shard.workers = %v, want 2", got)
	}
	runHist := reg.Histogram("shard.phase_seconds", "", obs.DefaultDurationBuckets,
		obs.Label{Name: "phase", Value: "run"})
	if got := runHist.Count(); got != 4 {
		t.Errorf("phase_seconds{phase=run} count = %d, want 4", got)
	}

	// Progress: the shard phase completed.
	snap := prog.Snapshot()
	if snap.Phase != "shards" || snap.Done != 4 || snap.Fraction != 1 {
		t.Errorf("progress = %+v, want shards 4/4", snap)
	}
	if snap.Cycle == 0 {
		t.Errorf("progress cycle axis empty")
	}

	// A detached engine records no timeline.
	engPlain, _ := run(t, Options{Shards: 2, Workers: 1}, equivTotal)
	if tl := engPlain.Timeline(); len(tl) != 0 {
		t.Errorf("detached engine recorded %d spans", len(tl))
	}
}
