package mem

import (
	"testing"

	"smtavf/internal/rng"
)

// refCache is a deliberately naive set-associative LRU model: a map per
// set plus an access-order list. The real Cache must agree with it on
// every hit/miss decision over randomized access sequences.
type refCache struct {
	sets, ways, line int
	data             []map[uint64]uint64 // set -> lineAddr -> last-use tick
	tick             uint64
}

func newRefCache(size, ways, line int) *refCache {
	sets := size / (ways * line)
	r := &refCache{sets: sets, ways: ways, line: line}
	for i := 0; i < sets; i++ {
		r.data = append(r.data, map[uint64]uint64{})
	}
	return r
}

func (r *refCache) access(addr uint64) (hit bool) {
	r.tick++
	la := addr &^ (uint64(r.line) - 1)
	set := int(la/uint64(r.line)) % r.sets
	m := r.data[set]
	if _, ok := m[la]; ok {
		m[la] = r.tick
		return true
	}
	if len(m) >= r.ways {
		// Evict the least recently used line.
		var victim uint64
		oldest := r.tick + 1
		for a, tk := range m {
			if tk < oldest {
				oldest = tk
				victim = a
			}
		}
		delete(m, victim)
	}
	m[la] = r.tick
	return false
}

// TestCacheAgreesWithReferenceModel drives the production cache and the
// naive model with identical random access streams and requires identical
// hit/miss decisions — the LRU bookkeeping (rank vectors) must behave
// exactly like a true LRU list.
func TestCacheAgreesWithReferenceModel(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "small", Size: 1 << 10, Ways: 2, LineSize: 64, Latency: 1},
		{Name: "assoc", Size: 4 << 10, Ways: 8, LineSize: 32, Latency: 1},
		{Name: "direct", Size: 2 << 10, Ways: 1, LineSize: 64, Latency: 1},
	} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			c := New(cfg, nil, 0, nil, 0, 0) // zero miss latency: timing out of scope
			ref := newRefCache(cfg.Size, cfg.Ways, cfg.LineSize)
			rnd := rng.New(42)
			// Skewed address distribution: hot region + occasional far
			// accesses, to exercise both hits and evictions.
			for i := 0; i < 200_000; i++ {
				var addr uint64
				if rnd.Bool(0.8) {
					addr = rnd.Uint64n(uint64(cfg.Size) * 2)
				} else {
					addr = rnd.Uint64n(uint64(cfg.Size) * 64)
				}
				now := uint64(i)
				got := c.Access(now, addr, 8, rnd.Bool(0.3), 0)
				want := ref.access(addr)
				if (got.Kind == Hit) != want {
					t.Fatalf("access %d (addr %#x): cache says hit=%v, reference says %v",
						i, addr, got.Kind == Hit, want)
				}
			}
		})
	}
}

// TestTLBAgreesWithReferenceModel does the same for the TLB's LRU.
func TestTLBAgreesWithReferenceModel(t *testing.T) {
	cfg := TLBConfig{Name: "ref", Entries: 64, Ways: 4, PageSize: 4096, MissPenalty: 0}
	tl := NewTLB(cfg, nil, 0)
	ref := newRefCache(64*4096, 4, 4096) // pages as lines
	rnd := rng.New(7)
	for i := 0; i < 100_000; i++ {
		page := rnd.Uint64n(512)
		addr := page * 4096
		_, miss := tl.Access(uint64(i), addr, 0)
		want := ref.access(addr)
		if !miss != want {
			t.Fatalf("access %d (page %d): TLB hit=%v, reference %v", i, page, !miss, want)
		}
	}
}
