package mem

import (
	"testing"

	"smtavf/internal/avf"
)

func smallTLB(trk *avf.Tracker) *TLB {
	cfg := TLBConfig{Name: "test", Entries: 16, Ways: 4, PageSize: 4096, MissPenalty: 200}
	return NewTLB(cfg, trk, avf.DTLB)
}

func TestTLBMissThenHit(t *testing.T) {
	tl := smallTLB(nil)
	pen, miss := tl.Access(0, 0x1000, 0)
	if !miss || pen != 200 {
		t.Fatalf("cold access: pen=%d miss=%v", pen, miss)
	}
	pen, miss = tl.Access(300, 0x1008, 0)
	if miss || pen != 0 {
		t.Fatalf("same-page access: pen=%d miss=%v", pen, miss)
	}
}

func TestTLBThreadsDistinct(t *testing.T) {
	// The same virtual page in two threads is two translations.
	tl := smallTLB(nil)
	tl.Access(0, 0x1000, 0)
	_, miss := tl.Access(10, 0x1000, 1)
	if !miss {
		t.Fatal("thread 1 hit thread 0's translation")
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tl := smallTLB(nil)
	// 4 sets × 4 ways; pages 4 apart share a set.
	for i := uint64(0); i < 5; i++ {
		tl.Access(i*10, (i*4)<<12, 0)
	}
	_, miss := tl.Access(100, 0, 0)
	if !miss {
		t.Fatal("LRU translation survived five same-set fills")
	}
}

func TestTLBAVFFillToLastAccess(t *testing.T) {
	trk := testTracker()
	tl := smallTLB(trk)
	tl.Access(0, 0x1000, 0)   // fill completes at 200
	tl.Access(700, 0x1000, 0) // last access
	tl.CloseAccounting(1000)
	eb := uint64(tl.cfg.EntryBits())
	if got := trk.ACEBitCycles(avf.DTLB); got != 500*eb {
		t.Fatalf("TLB ACE bit-cycles = %d, want %d", got, 500*eb)
	}
}

func TestTLBMissRate(t *testing.T) {
	tl := smallTLB(nil)
	tl.Access(0, 0x1000, 0)
	tl.Access(10, 0x1000, 0)
	if got := tl.MissRate(); got != 0.5 {
		t.Fatalf("miss rate %v", got)
	}
	if smallTLB(nil).MissRate() != 0 {
		t.Fatal("empty TLB miss rate")
	}
}

func TestTLBEntryBits(t *testing.T) {
	cfg := TLBConfig{Entries: 256, Ways: 4, PageSize: 4096, MissPenalty: 200}
	// vtag = 48-12-6 = 30, pfn = 36, +3 state = 69.
	if got := cfg.EntryBits(); got != 69 {
		t.Fatalf("entry bits = %d, want 69", got)
	}
}

func TestTLBArrayBits(t *testing.T) {
	tl := smallTLB(nil)
	if tl.ArrayBits() != uint64(16)*uint64(tl.cfg.EntryBits()) {
		t.Fatal("array bits wrong")
	}
}

func TestTLBNonPowerOfTwoSetsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTLB(TLBConfig{Name: "bad", Entries: 12, Ways: 4, PageSize: 4096}, nil, 0)
}
