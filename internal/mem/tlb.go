package mem

import (
	"math/bits"

	"smtavf/internal/avf"
)

// TLBConfig describes a translation lookaside buffer.
type TLBConfig struct {
	Name        string
	Entries     int
	Ways        int
	PageSize    int // bytes
	MissPenalty int // cycles added on a miss (paper: 200)
}

// EntryBits returns the bit width of one TLB entry: virtual tag + physical
// frame number + valid/permission state.
func (c TLBConfig) EntryBits() int {
	pageBits := bits.Len(uint(c.PageSize) - 1)
	vtag := physAddrBits - pageBits - bits.Len(uint(c.Entries/c.Ways)-1)
	pfn := physAddrBits - pageBits
	return vtag + pfn + 3
}

type tlbEntry struct {
	tag        uint64
	valid      bool
	owner      int
	fill       uint64
	lastAccess uint64
}

// TLB is a set-associative, LRU translation buffer with fill→last-access
// AVF accounting on its entries.
type TLB struct {
	cfg      TLBConfig
	sets     int
	pageBits uint
	entries  []tlbEntry
	order    []uint8

	trk *avf.Tracker
	st  avf.Struct

	Accesses uint64
	Misses   uint64
}

// NewTLB builds a TLB; if trk is non-nil its entries are AVF instrumented
// under structure st.
func NewTLB(cfg TLBConfig, trk *avf.Tracker, st avf.Struct) *TLB {
	sets := cfg.Entries / cfg.Ways
	if sets&(sets-1) != 0 {
		panic("mem: TLB set count must be a power of two: " + cfg.Name)
	}
	t := &TLB{
		cfg:      cfg,
		sets:     sets,
		pageBits: uint(bits.Len(uint(cfg.PageSize) - 1)),
		entries:  make([]tlbEntry, cfg.Entries),
		order:    make([]uint8, cfg.Entries),
		trk:      trk,
		st:       st,
	}
	for s := 0; s < sets; s++ {
		for w := 0; w < cfg.Ways; w++ {
			t.order[s*cfg.Ways+w] = uint8(w)
		}
	}
	return t
}

// ArrayBits returns the total entry-array capacity in bits.
func (t *TLB) ArrayBits() uint64 {
	return uint64(t.cfg.Entries) * uint64(t.cfg.EntryBits())
}

// Access translates addr for thread tid at cycle now, returning the extra
// latency (0 on a hit, MissPenalty on a miss) and whether it missed.
// Threads have disjoint address spaces, so tid participates in the tag.
func (t *TLB) Access(now uint64, addr uint64, tid int) (penalty int, miss bool) {
	t.Accesses++
	page := addr >> t.pageBits
	set := int(page) & (t.sets - 1)
	tag := (page>>uint(bits.Len(uint(t.sets)-1)))<<4 | uint64(tid)
	base := set * t.cfg.Ways
	for w := 0; w < t.cfg.Ways; w++ {
		e := &t.entries[base+w]
		if e.valid && e.tag == tag {
			t.touch(base, w)
			if t.trk != nil && now > e.lastAccess {
				e.lastAccess = now
			}
			return 0, false
		}
	}
	t.Misses++
	victim := 0
	for w := 0; w < t.cfg.Ways; w++ {
		if t.order[base+w] == uint8(t.cfg.Ways-1) {
			victim = w
			break
		}
	}
	e := &t.entries[base+victim]
	t.close(e, now)
	fillAt := now + uint64(t.cfg.MissPenalty)
	*e = tlbEntry{tag: tag, valid: true, owner: tid, fill: fillAt, lastAccess: fillAt}
	t.touch(base, victim)
	return t.cfg.MissPenalty, true
}

func (t *TLB) touch(base, w int) {
	old := t.order[base+w]
	for i := 0; i < t.cfg.Ways; i++ {
		if t.order[base+i] < old {
			t.order[base+i]++
		}
	}
	t.order[base+w] = 0
}

// close finalizes an entry's AVF interval: ACE from fill to last access,
// un-ACE afterwards.
func (t *TLB) close(e *tlbEntry, now uint64) {
	if !e.valid || t.trk == nil {
		return
	}
	eb := uint64(t.cfg.EntryBits())
	t.trk.AddInterval(t.st, e.owner, eb, e.fill, e.lastAccess, true)
	t.trk.AddInterval(t.st, e.owner, eb, e.lastAccess, now, false)
	e.valid = false
}

// CloseAccounting finalizes entries still resident at the end of a run.
func (t *TLB) CloseAccounting(now uint64) {
	if t.trk == nil {
		return
	}
	for i := range t.entries {
		t.close(&t.entries[i], now)
	}
}

// MissRate returns misses/accesses.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}
