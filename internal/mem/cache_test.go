package mem

import (
	"testing"

	"smtavf/internal/avf"
)

func smallCache(next *Cache, memLat int, trk *avf.Tracker) *Cache {
	cfg := Config{Name: "test", Size: 1 << 10, Ways: 2, LineSize: 64, Latency: 1, Ports: 2}
	return New(cfg, next, memLat, trk, avf.DL1Data, avf.DL1Tag)
}

func testTracker() *avf.Tracker {
	var bits [avf.NumStructs]uint64
	for i := range bits {
		bits[i] = 1 << 20
	}
	return avf.NewTracker(1, bits)
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := smallCache(nil, 100, nil)
	r := c.Access(10, 0x1000, 8, false, 0)
	if r.Kind == Hit {
		t.Fatal("cold access hit")
	}
	if r.Ready != 10+1+100 {
		t.Fatalf("miss ready = %d, want 111", r.Ready)
	}
	r2 := c.Access(200, 0x1000, 8, false, 0)
	if r2.Kind != Hit {
		t.Fatal("second access missed")
	}
	if r2.Ready != 201 {
		t.Fatalf("hit ready = %d, want 201", r2.Ready)
	}
}

func TestCacheHitUnderFill(t *testing.T) {
	c := smallCache(nil, 100, nil)
	c.Access(10, 0x1000, 8, false, 0) // ready at 111
	// A second access to the same line before the fill completes merges
	// with the outstanding miss (MSHR behaviour) and counts as a hit.
	r := c.Access(20, 0x1008, 8, false, 0)
	if r.Kind != Hit {
		t.Fatal("merged access classified as miss")
	}
	if r.Ready != 111+1 {
		t.Fatalf("merged ready = %d, want 112", r.Ready)
	}
}

func TestCacheSameSetEviction(t *testing.T) {
	c := smallCache(nil, 100, nil)
	// 1KB, 2-way, 64B lines → 8 sets; addresses 512B apart share a set.
	stride := uint64(8 * 64)
	c.Access(0, 0x0, 8, false, 0)
	c.Access(0, stride, 8, false, 0)
	c.Access(0, 2*stride, 8, false, 0) // evicts 0x0 (LRU)
	if c.Contains(0x0) {
		t.Fatal("LRU line survived")
	}
	if !c.Contains(stride) || !c.Contains(2*stride) {
		t.Fatal("younger lines evicted")
	}
	if c.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions)
	}
}

func TestCacheWritebackCounted(t *testing.T) {
	c := smallCache(nil, 100, nil)
	stride := uint64(8 * 64)
	c.Access(0, 0x0, 8, true, 0) // dirty
	c.Access(0, stride, 8, false, 0)
	c.Access(0, 2*stride, 8, false, 0) // evicts dirty 0x0
	if c.Writeback != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Writeback)
	}
}

func TestTwoLevelLatency(t *testing.T) {
	l2 := New(Config{Name: "L2", Size: 1 << 16, Ways: 4, LineSize: 128, Latency: 12}, nil, 200, nil, 0, 0)
	l1 := New(Config{Name: "L1", Size: 1 << 10, Ways: 2, LineSize: 64, Latency: 1}, l2, 0, nil, 0, 0)
	// Cold: L1 miss + L2 miss: 1 + 12 + 200.
	r := l1.Access(0, 0x4000, 8, false, 0)
	if r.Kind != L2Miss {
		t.Fatalf("kind = %v, want L2Miss", r.Kind)
	}
	if r.Ready != 213 {
		t.Fatalf("ready = %d, want 213", r.Ready)
	}
	// Evict from L1, keep in L2 → L1 miss that hits L2.
	stride := uint64(8 * 64)
	l1.Access(300, 0x4000+stride, 8, false, 0)
	l1.Access(600, 0x4000+2*stride, 8, false, 0)
	if l1.Contains(0x4000) {
		t.Fatal("expected L1 eviction")
	}
	r = l1.Access(1000, 0x4000, 8, false, 0)
	if r.Kind != L1Miss {
		t.Fatalf("kind = %v, want L1Miss", r.Kind)
	}
	if r.Ready != 1000+1+12 {
		t.Fatalf("ready = %d, want 1013", r.Ready)
	}
}

func TestPorts(t *testing.T) {
	c := smallCache(nil, 100, nil)
	if !c.TryPort(5) || !c.TryPort(5) {
		t.Fatal("two ports must be available")
	}
	if c.TryPort(5) {
		t.Fatal("third access in one cycle granted")
	}
	if !c.TryPort(6) {
		t.Fatal("ports did not reset next cycle")
	}
	unported := New(Config{Name: "np", Size: 1 << 10, Ways: 2, LineSize: 64, Latency: 1}, nil, 10, nil, 0, 0)
	for i := 0; i < 10; i++ {
		if !unported.TryPort(1) {
			t.Fatal("port-less cache must always grant")
		}
	}
}

func TestDataAVFReadEndsACEInterval(t *testing.T) {
	trk := testTracker()
	c := smallCache(nil, 100, trk)
	c.Access(0, 0x1000, 8, false, 0) // fill completes at 101
	c.Access(1001, 0x1000, 8, false, 0)
	// The read delivers at 1001+latency = 1002; the word survived
	// 1002-101 = 901 cycles to be read: ACE.
	if got := trk.ACEBitCycles(avf.DL1Data); got != 901*64 {
		t.Fatalf("ACE bit-cycles = %d, want %d", got, 901*64)
	}
}

func TestDataAVFOverwriteIsUnACE(t *testing.T) {
	trk := testTracker()
	c := smallCache(nil, 100, trk)
	c.Access(0, 0x1000, 8, false, 0)   // fill at 101
	c.Access(1001, 0x1000, 8, true, 0) // overwrite: interval is un-ACE
	if got := trk.ACEBitCycles(avf.DL1Data); got != 0 {
		t.Fatalf("overwrite interval counted ACE: %d", got)
	}
}

func TestDataAVFCleanEvictionIsUnACE(t *testing.T) {
	trk := testTracker()
	c := smallCache(nil, 100, trk)
	stride := uint64(8 * 64)
	c.Access(0, 0x0, 8, false, 0)
	c.Access(200, stride, 8, false, 0)
	c.Access(400, 2*stride, 8, false, 0) // evicts clean 0x0
	if got := trk.ACEBitCycles(avf.DL1Data); got != 0 {
		t.Fatalf("clean eviction counted ACE: %d", got)
	}
}

func TestDataAVFDirtyEvictionIsACE(t *testing.T) {
	trk := testTracker()
	c := smallCache(nil, 100, trk)
	stride := uint64(8 * 64)
	c.Access(0, 0x0, 8, true, 0) // dirty word, written at fill time 101
	c.Access(200, stride, 8, false, 0)
	c.Access(400, 2*stride, 8, false, 0) // evicts dirty 0x0 at cycle 400
	// The dirty word must survive from its write (101) to the writeback
	// (400): 299 cycles ACE. Clean words of the line contribute nothing.
	if got := trk.ACEBitCycles(avf.DL1Data); got != 299*64 {
		t.Fatalf("dirty eviction ACE bit-cycles = %d, want %d", got, 299*64)
	}
}

func TestTagAVFFillToLastAccess(t *testing.T) {
	trk := testTracker()
	c := smallCache(nil, 100, trk)
	c.Access(0, 0x1000, 8, false, 0)    // fill at 101
	c.Access(1101, 0x1000, 8, false, 0) // last access, delivers at 1102
	c.CloseAccounting(2000)
	// Tag ACE from fill (101) to last access (1102): 1001 cycles.
	tagBits := uint64(c.cfg.TagBits())
	if got := trk.ACEBitCycles(avf.DL1Tag); got != 1001*tagBits {
		t.Fatalf("tag ACE bit-cycles = %d, want %d", got, 1001*tagBits)
	}
}

func TestTagAVFDirtyLineACEUntilEviction(t *testing.T) {
	trk := testTracker()
	c := smallCache(nil, 100, trk)
	c.Access(0, 0x1000, 8, true, 0) // fill+write at 101, dirty
	c.CloseAccounting(601)
	// Dirty line: the tag addresses the writeback, ACE until "eviction"
	// at close: 500 cycles (the fill-to-last-access interval is empty).
	tagBits := uint64(c.cfg.TagBits())
	if got := trk.ACEBitCycles(avf.DL1Tag); got != 500*tagBits {
		t.Fatalf("tag ACE bit-cycles = %d, want %d", got, 500*tagBits)
	}
}

func TestMissRateAccounting(t *testing.T) {
	c := smallCache(nil, 100, nil)
	c.Access(0, 0x1000, 8, false, 0)
	c.Access(10, 0x1000, 8, false, 0)
	c.Access(20, 0x1000, 8, false, 0)
	c.Access(30, 0x2000, 8, false, 0)
	if c.Accesses != 4 || c.Misses != 2 {
		t.Fatalf("accesses=%d misses=%d", c.Accesses, c.Misses)
	}
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("miss rate %v", got)
	}
	empty := smallCache(nil, 1, nil)
	if empty.MissRate() != 0 {
		t.Fatal("empty cache miss rate")
	}
}

func TestConfigDerived(t *testing.T) {
	cfg := Config{Size: 64 << 10, Ways: 4, LineSize: 64}
	if cfg.Sets() != 256 {
		t.Fatalf("sets = %d", cfg.Sets())
	}
	// 48-bit addresses, 14 bits of set+offset, +2 state bits.
	if cfg.TagBits() != 48-14+2 {
		t.Fatalf("tag bits = %d", cfg.TagBits())
	}
}

func TestNonPowerOfTwoSetsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two sets")
		}
	}()
	New(Config{Name: "bad", Size: 3 << 10, Ways: 2, LineSize: 64, Latency: 1}, nil, 1, nil, 0, 0)
}

func TestThreadsShareAndEvictEachOther(t *testing.T) {
	c := smallCache(nil, 100, nil)
	stride := uint64(8 * 64)
	c.Access(0, 0x0, 8, false, 0)
	c.Access(0, stride, 8, false, 1)
	c.Access(0, 2*stride, 8, false, 2)
	if c.Contains(0x0) {
		t.Fatal("thread 0's line should have been evicted by contention")
	}
}
