// Package mem implements the simulated memory hierarchy: set-associative
// write-back caches with miss-status merging, TLBs, and the AVF
// instrumentation for the DL1 data and tag arrays and the TLBs (the
// address-based-structure method of Biswas et al., ISCA 2005).
package mem

import (
	"math/bits"

	"smtavf/internal/avf"
)

// wordSize is the AVF tracking granularity within a cache line, in bytes.
const wordSize = 8

// physAddrBits sizes the tag field of cache lines and TLB entries.
const physAddrBits = 48

// Config describes one cache level.
type Config struct {
	Name     string
	Size     int // total bytes
	Ways     int
	LineSize int // bytes
	Latency  int // access latency in cycles
	Ports    int // accesses per cycle (0 = unlimited)
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.Size / (c.Ways * c.LineSize) }

// TagBits returns the per-line tag-array bit count (address tag plus
// valid and dirty state).
func (c Config) TagBits() int {
	return physAddrBits - bits.Len(uint(c.Sets()*c.LineSize)-1) + 2
}

// MissKind classifies how deep an access had to go.
type MissKind int

// Miss classifications returned by Cache.Access.
const (
	Hit    MissKind = iota // hit in this cache
	L1Miss                 // missed here, hit in the next level
	L2Miss                 // missed here and in the next level (memory access)
)

// Result describes the outcome of a cache access.
type Result struct {
	Ready uint64   // cycle at which the data is available
	Kind  MissKind // how deep the access went
}

type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	readyAt uint64 // fill completion time (hit-under-fill returns this)
	owner   int    // last accessing thread (AVF attribution)

	// AVF state (only maintained when the cache is instrumented)
	fill       uint64 // cycle the current fill completed
	lastAccess uint64
	wordEvent  []uint64 // per-word last read/write/fill cycle
	wordDirty  uint64   // bitmask of dirty words
}

// Cache is one level of a write-back, write-allocate, true-LRU cache
// hierarchy with immediate-install miss handling: on a miss the victim is
// replaced at once and the new line carries a future readyAt, so later
// accesses to an in-flight line merge with the outstanding miss (the MSHR
// behaviour that matters for timing).
type Cache struct {
	cfg      Config
	sets     int
	setMask  uint64
	offBits  uint
	lines    []line  // sets*ways
	order    []uint8 // LRU rank per way
	next     *Cache  // lower level; nil means memory backs this cache
	memLat   int     // memory latency when next == nil
	wordsPer int

	// AVF instrumentation (nil tracker disables it)
	trk        *avf.Tracker
	dataStruct avf.Struct
	tagStruct  avf.Struct
	tagBits    uint64

	// port arbitration
	portCycle uint64
	portUsed  int

	// statistics
	Accesses  uint64
	Misses    uint64
	Evictions uint64
	Writeback uint64
}

// New builds a cache level. next is the lower level (nil = memory with
// memLatency cycles). If trk is non-nil, the data and tag arrays are AVF
// instrumented under dataStruct/tagStruct.
func New(cfg Config, next *Cache, memLatency int, trk *avf.Tracker, dataStruct, tagStruct avf.Struct) *Cache {
	sets := cfg.Sets()
	if sets&(sets-1) != 0 {
		panic("mem: cache set count must be a power of two: " + cfg.Name)
	}
	c := &Cache{
		cfg:        cfg,
		sets:       sets,
		setMask:    uint64(sets - 1),
		offBits:    uint(bits.Len(uint(cfg.LineSize) - 1)),
		lines:      make([]line, sets*cfg.Ways),
		order:      make([]uint8, sets*cfg.Ways),
		next:       next,
		memLat:     memLatency,
		wordsPer:   cfg.LineSize / wordSize,
		trk:        trk,
		dataStruct: dataStruct,
		tagStruct:  tagStruct,
		tagBits:    uint64(cfg.TagBits()),
	}
	for s := 0; s < sets; s++ {
		for w := 0; w < cfg.Ways; w++ {
			c.order[s*cfg.Ways+w] = uint8(w)
		}
	}
	if trk != nil {
		for i := range c.lines {
			c.lines[i].wordEvent = make([]uint64, c.wordsPer)
		}
	}
	return c
}

// Cfg returns the cache configuration.
func (c *Cache) Cfg() Config { return c.cfg }

// DataBits returns the total data-array capacity in bits.
func (c *Cache) DataBits() uint64 { return uint64(c.cfg.Size) * 8 }

// TagArrayBits returns the total tag-array capacity in bits.
func (c *Cache) TagArrayBits() uint64 {
	return uint64(len(c.lines)) * c.tagBits
}

func (c *Cache) setOf(addr uint64) int { return int((addr >> c.offBits) & c.setMask) }
func (c *Cache) tagOf(addr uint64) uint64 {
	return addr >> (c.offBits + uint(bits.Len(uint(c.sets)-1)))
}

// TryPort consumes one access port for the given cycle, reporting whether
// one was available. Callers that fail must retry on a later cycle.
func (c *Cache) TryPort(now uint64) bool {
	if c.cfg.Ports <= 0 {
		return true
	}
	if c.portCycle != now {
		c.portCycle = now
		c.portUsed = 0
	}
	if c.portUsed >= c.cfg.Ports {
		return false
	}
	c.portUsed++
	return true
}

// Access performs a read or write of size bytes at addr on behalf of thread
// tid, at cycle now. It returns when the data is ready and how deep the
// access went. Port arbitration is the caller's business (TryPort).
func (c *Cache) Access(now uint64, addr uint64, size int, write bool, tid int) Result {
	c.Accesses++
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			c.touch(base, w)
			ready := now
			if ln.readyAt > ready {
				ready = ln.readyAt // hit under an in-flight fill
			}
			ready += uint64(c.cfg.Latency)
			c.recordAccess(ln, ready, addr, size, write, tid)
			return Result{Ready: ready, Kind: Hit}
		}
	}

	// Miss: fetch the line from below, evict the LRU victim, install.
	c.Misses++
	kind := L1Miss
	var fillReady uint64
	lineAddr := addr &^ (uint64(c.cfg.LineSize) - 1)
	if c.next != nil {
		r := c.next.Access(now+uint64(c.cfg.Latency), lineAddr, c.cfg.LineSize, false, tid)
		fillReady = r.Ready
		if r.Kind != Hit {
			kind = L2Miss
		}
	} else {
		fillReady = now + uint64(c.cfg.Latency) + uint64(c.memLat)
	}

	victim := 0
	for w := 0; w < c.cfg.Ways; w++ {
		if c.order[base+w] == uint8(c.cfg.Ways-1) {
			victim = w
			break
		}
	}
	ln := &c.lines[base+victim]
	c.evict(ln, now)
	ln.tag = tag
	ln.valid = true
	ln.dirty = false
	ln.readyAt = fillReady
	ln.owner = tid
	if c.trk != nil {
		ln.fill = fillReady
		ln.lastAccess = fillReady
		ln.wordDirty = 0
		for i := range ln.wordEvent {
			ln.wordEvent[i] = fillReady
		}
	}
	c.touch(base, victim)
	c.recordAccess(ln, fillReady, addr, size, write, tid)
	return Result{Ready: fillReady, Kind: kind}
}

// Contains reports whether addr currently hits without side effects.
func (c *Cache) Contains(addr uint64) bool {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

func (c *Cache) touch(base, w int) {
	old := c.order[base+w]
	for i := 0; i < c.cfg.Ways; i++ {
		if c.order[base+i] < old {
			c.order[base+i]++
		}
	}
	c.order[base+w] = 0
}

// recordAccess applies the AVF word rules for a read or write at cycle at.
func (c *Cache) recordAccess(ln *line, at uint64, addr uint64, size int, write bool, tid int) {
	if write {
		ln.dirty = true
	}
	ln.owner = tid
	if c.trk == nil {
		return
	}
	if at > ln.lastAccess {
		ln.lastAccess = at
	}
	off := int(addr) & (c.cfg.LineSize - 1)
	w0 := off / wordSize
	w1 := (off + size - 1) / wordSize
	for w := w0; w <= w1 && w < c.wordsPer; w++ {
		last := ln.wordEvent[w]
		if at > last {
			// A read ends an interval the data had to survive: ACE.
			// A write ends an interval about to be overwritten: un-ACE.
			c.trk.AddInterval(c.dataStruct, tid, wordSize*8, last, at, !write)
			ln.wordEvent[w] = at
		}
		if write {
			ln.wordDirty |= 1 << uint(w)
		}
	}
}

// evict closes the AVF accounting of a victim line at cycle now.
func (c *Cache) evict(ln *line, now uint64) {
	if !ln.valid {
		return
	}
	c.Evictions++
	if ln.dirty {
		c.Writeback++
	}
	if c.trk == nil {
		ln.valid = false
		return
	}
	// Data words: intervals ending in eviction are un-ACE for clean words
	// ("cache lines that will not be accessed before eviction"); dirty
	// words must survive until the writeback reads them — ACE.
	for w := 0; w < c.wordsPer; w++ {
		dirty := ln.wordDirty&(1<<uint(w)) != 0
		c.trk.AddInterval(c.dataStruct, ln.owner, wordSize*8, ln.wordEvent[w], now, dirty)
	}
	// Tag: ACE from fill to last access (a flipped tag falsifies every
	// lookup in that window); ACE until eviction too when the line is
	// dirty (the writeback address depends on the tag).
	c.trk.AddInterval(c.tagStruct, ln.owner, c.tagBits, ln.fill, ln.lastAccess, true)
	c.trk.AddInterval(c.tagStruct, ln.owner, c.tagBits, ln.lastAccess, now, ln.dirty)
	ln.valid = false
}

// CloseAccounting finalizes AVF intervals for lines still resident at the
// end of a run, treating the end of simulation as an eviction.
func (c *Cache) CloseAccounting(now uint64) {
	if c.trk == nil {
		return
	}
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid {
			c.evict(ln, now)
		}
	}
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}
