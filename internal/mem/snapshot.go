package mem

import "smtavf/internal/digest"

// Snapshot is a lightweight tag-array checkpoint of a cache or TLB: the
// live-line census plus an order-sensitive digest of every (way, tag,
// valid, dirty) tuple. It identifies the array's architectural content at
// an interval boundary without copying it — enough to verify that two
// deterministic reconstructions of the same boundary agree.
type Snapshot struct {
	Valid int    // valid lines or entries
	Dirty int    // dirty lines (always 0 for TLBs)
	Hash  uint64 // digest over the tag array, index order
}

// Snapshot captures the cache's tag-array state. Timing fields (readyAt,
// LRU rank) and AVF bookkeeping are excluded deliberately: a checkpoint
// records architectural content, and functional warmup reconstructs
// residency order on its own compressed clock.
func (c *Cache) Snapshot() Snapshot {
	var s Snapshot
	h := digest.New()
	for i := range c.lines {
		ln := &c.lines[i]
		if !ln.valid {
			continue
		}
		s.Valid++
		if ln.dirty {
			s.Dirty++
		}
		h = digest.Mix(h, uint64(i))
		h = digest.Mix(h, ln.tag)
		h = digest.MixBool(h, ln.dirty)
	}
	s.Hash = h
	return s
}

// Snapshot captures the TLB's entry-array state.
func (t *TLB) Snapshot() Snapshot {
	var s Snapshot
	h := digest.New()
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			continue
		}
		s.Valid++
		h = digest.Mix(h, uint64(i))
		h = digest.Mix(h, e.tag)
	}
	s.Hash = h
	return s
}
