package fetch

import (
	"reflect"
	"testing"
)

// states builds a 4-thread snapshot: in-flight counts 10, 20, 30, 40.
func states() []ThreadState {
	return []ThreadState{
		{Active: true, InFlight: 10},
		{Active: true, InFlight: 20},
		{Active: true, InFlight: 30},
		{Active: true, InFlight: 40},
	}
}

func TestICountOrder(t *testing.T) {
	ts := states()
	ts[0].InFlight = 25 // reorder
	got := ICount{}.Order(ts, nil)
	if !reflect.DeepEqual(got, []int{1, 0, 2, 3}) {
		t.Fatalf("order = %v", got)
	}
}

func TestICountSkipsInactive(t *testing.T) {
	ts := states()
	ts[1].Active = false
	got := ICount{}.Order(ts, nil)
	if !reflect.DeepEqual(got, []int{0, 2, 3}) {
		t.Fatalf("order = %v", got)
	}
}

func TestICountTieBreak(t *testing.T) {
	ts := []ThreadState{
		{Active: true, InFlight: 5},
		{Active: true, InFlight: 5},
	}
	got := ICount{}.Order(ts, nil)
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("ties must break by id: %v", got)
	}
}

func TestStallGatesL2Missing(t *testing.T) {
	ts := states()
	ts[0].OutstandingL2 = 1
	got := Stall{}.Order(ts, nil)
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("order = %v", got)
	}
}

func TestStallAlwaysAllowsOne(t *testing.T) {
	ts := states()
	for i := range ts {
		ts[i].OutstandingL2 = 1
	}
	got := Stall{}.Order(ts, nil)
	if !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("all-gated STALL must allow the least-loaded thread: %v", got)
	}
}

func TestFlushGatesStrictly(t *testing.T) {
	ts := states()
	for i := range ts {
		ts[i].OutstandingL2 = 1
	}
	if got := (Flush{}).Order(ts, nil); len(got) != 0 {
		t.Fatalf("FLUSH must gate all memory-waiting threads: %v", got)
	}
	if f := (Flush{}); !f.FlushOnL2Miss() {
		t.Fatal("FLUSH must request squashes")
	}
}

func TestOnlyFlushSquashes(t *testing.T) {
	for _, p := range []Policy{ICount{}, Stall{}, DG{}, PDG{}, DWarn{}, StallP{}} {
		if p.FlushOnL2Miss() {
			t.Errorf("%s must not squash", p.Name())
		}
	}
}

func TestDGThreshold(t *testing.T) {
	ts := states()
	ts[0].OutstandingL1 = 2
	ts[1].OutstandingL1 = 1
	p := DG{Threshold: 1}
	got := p.Order(ts, nil)
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("order = %v", got)
	}
}

func TestDGAllGatedAllowsOne(t *testing.T) {
	ts := states()
	for i := range ts {
		ts[i].OutstandingL1 = 5
	}
	if got := (DG{Threshold: 1}).Order(ts, nil); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("order = %v", got)
	}
}

func TestPDGUsesPredictions(t *testing.T) {
	ts := states()
	ts[0].PredictedL1 = 2 // no resolved misses yet, but predicted
	p := PDG{Threshold: 1}
	got := p.Order(ts, nil)
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("PDG ignored predictions: %v", got)
	}
	// DG with the same state would not gate.
	if got := (DG{Threshold: 1}).Order(ts, nil); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("DG gated on predictions: %v", got)
	}
}

func TestDWarnDeprioritizesWithoutGating(t *testing.T) {
	ts := states()
	ts[0].OutstandingL1 = 1 // least loaded but warned
	got := DWarn{}.Order(ts, nil)
	if !reflect.DeepEqual(got, []int{1, 2, 3, 0}) {
		t.Fatalf("order = %v", got)
	}
	if len(got) != 4 {
		t.Fatal("DWarn must not gate")
	}
}

func TestStallPGatesOnPredictedL2(t *testing.T) {
	ts := states()
	ts[0].PredictedL2 = 1
	got := StallP{}.Order(ts, nil)
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("order = %v", got)
	}
	// STALL with the same state would not gate.
	if got := (Stall{}).Order(ts, nil); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("STALL gated on a prediction: %v", got)
	}
}

func TestVAwareOrdersByVulnerability(t *testing.T) {
	ts := states()
	ts[0].RecentACE = 400 // least loaded, but most vulnerable
	ts[1].RecentACE = 100
	ts[2].RecentACE = 300
	ts[3].RecentACE = 200
	got := VAware{}.Order(ts, nil)
	if !reflect.DeepEqual(got, []int{1, 3, 2, 0}) {
		t.Fatalf("order = %v", got)
	}
}

func TestVAwareGatesOnL2AndTieBreaks(t *testing.T) {
	ts := states()
	ts[1].OutstandingL2 = 1
	got := VAware{}.Order(ts, nil) // all RecentACE equal: fall back to icount
	if !reflect.DeepEqual(got, []int{0, 2, 3}) {
		t.Fatalf("order = %v", got)
	}
	for i := range ts {
		ts[i].OutstandingL2 = 1
	}
	if got := (VAware{}).Order(ts, nil); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("all-gated VAware must keep one thread fetching: %v", got)
	}
}

func TestRoundRobinRotates(t *testing.T) {
	rr := &RoundRobin{}
	ts := states()
	a := rr.Order(ts, nil)
	b := rr.Order(ts, nil)
	if reflect.DeepEqual(a, b) {
		t.Fatalf("round robin did not rotate: %v then %v", a, b)
	}
	if !reflect.DeepEqual(a, []int{0, 1, 2, 3}) || !reflect.DeepEqual(b, []int{1, 2, 3, 0}) {
		t.Fatalf("rotation wrong: %v, %v", a, b)
	}
	// Inactive threads drop out without breaking rotation.
	ts[2].Active = false
	if got := rr.Order(ts, nil); len(got) != 3 {
		t.Fatalf("order = %v", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ICOUNT", "STALL", "FLUSH", "DG", "PDG", "DWarn", "STALLP", "VAware", "RR"} {
		p := ByName(name)
		if p == nil {
			t.Fatalf("ByName(%q) = nil", name)
		}
		if p.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if ByName("bogus") != nil {
		t.Fatal("unknown policy resolved")
	}
}

func TestAllReturnsPaperPolicies(t *testing.T) {
	ps := All()
	if len(ps) != 6 {
		t.Fatalf("All() returned %d policies", len(ps))
	}
	want := []string{"ICOUNT", "STALL", "FLUSH", "DG", "PDG", "DWarn"}
	for i, p := range ps {
		if p.Name() != want[i] {
			t.Fatalf("All()[%d] = %s, want %s", i, p.Name(), want[i])
		}
	}
}

func TestEmptyStates(t *testing.T) {
	for _, p := range []Policy{ICount{}, Stall{}, Flush{}, DG{}, PDG{}, DWarn{}, StallP{}} {
		if got := p.Order(nil, nil); len(got) != 0 {
			t.Errorf("%s ordered threads out of nothing: %v", p.Name(), got)
		}
	}
}
