// Package fetch implements the SMT instruction-fetch policies studied in
// the paper: the ICOUNT baseline (Tullsen et al., ISCA 1996) and the five
// advanced policies it compares — FLUSH and STALL (Tullsen & Brown, MICRO
// 2001), DG and PDG (El-Moursy & Albonesi, HPCA 2003), and DWarn (Cazorla
// et al., IPDPS 2004) — plus STALLP, the predictive STALL enhancement the
// paper's §5 proposes as future work.
//
// A policy sees a per-thread state snapshot each cycle and returns the
// threads allowed to fetch, in priority order; the core distributes the
// fetch bandwidth over that order (ICOUNT2.8 style: up to 2 threads and 8
// instructions per cycle).
package fetch

// ThreadState is the per-thread view a policy bases its decision on.
type ThreadState struct {
	Active        bool // context exists and has not finished its run
	InFlight      int  // instructions in the front end and IQ (ICOUNT metric)
	OutstandingL1 int  // unresolved loads that missed the DL1
	OutstandingL2 int  // unresolved loads that also missed the L2
	PredictedL1   int  // in-flight loads *predicted* to miss the DL1 (PDG)
	PredictedL2   int  // in-flight loads *predicted* to miss the L2 (STALLP)
	// RecentACE is a moving average of the thread's ACE bit-cycle
	// contribution to the shared pipeline structures — the vulnerability
	// feedback used by the VAware policy (the paper's §5 proposal of
	// thread-vulnerability-driven resource distribution).
	RecentACE float64
}

// Policy decides which threads fetch each cycle.
type Policy interface {
	// Name returns the policy's canonical name (e.g. "FLUSH").
	Name() string
	// Order appends the thread ids permitted to fetch this cycle to dst,
	// highest priority first, and returns the extended slice (which may
	// reallocate dst). Threads omitted are fetch-gated this cycle. The
	// core passes the same scratch buffer every cycle so steady-state
	// ordering never allocates; callers without a buffer pass nil.
	Order(ts []ThreadState, dst []int) []int
	// FlushOnL2Miss reports whether the core must squash the instructions
	// younger than a load that misses the L2 (the FLUSH mechanism).
	FlushOnL2Miss() bool
}

// appendByICount appends the active thread ids passing keep to dst, sorted
// by ascending in-flight count (ties by id). The region dst[:len(dst)] is
// left untouched; the appended tail is insertion-sorted, which for thread
// counts (≤ a few dozen) beats sort.Slice and allocates nothing.
func appendByICount(ts []ThreadState, keep func(ThreadState) bool, dst []int) []int {
	base := len(dst)
	for i, t := range ts {
		if !t.Active || (keep != nil && !keep(t)) {
			continue
		}
		j := len(dst)
		dst = append(dst, i)
		// Ids arrive in ascending order, so <= keeps equal in-flight
		// counts in id order — the same total order the old sort.Slice
		// comparator produced.
		for j > base && ts[dst[j-1]].InFlight > t.InFlight {
			dst[j] = dst[j-1]
			j--
		}
		dst[j] = i
	}
	return dst
}

// ICount is the baseline: priority to the thread with the fewest in-flight
// instructions.
type ICount struct{}

// Name implements Policy.
func (ICount) Name() string { return "ICOUNT" }

// Order implements Policy.
func (ICount) Order(ts []ThreadState, dst []int) []int { return appendByICount(ts, nil, dst) }

// FlushOnL2Miss implements Policy.
func (ICount) FlushOnL2Miss() bool { return false }

// Stall gates threads with outstanding L2 misses but always lets at least
// one thread fetch.
type Stall struct{}

// Name implements Policy.
func (Stall) Name() string { return "STALL" }

// Order implements Policy.
func (Stall) Order(ts []ThreadState, dst []int) []int {
	base := len(dst)
	ids := appendByICount(ts, func(t ThreadState) bool { return t.OutstandingL2 == 0 }, dst)
	if len(ids) > base {
		return ids
	}
	// All threads are waiting on memory: allow the least-loaded one.
	return leastLoaded(ts, ids[:base])
}

// leastLoaded appends the single active thread with the fewest in-flight
// instructions (the gated-policy fallback), if any thread is active.
func leastLoaded(ts []ThreadState, dst []int) []int {
	base := len(dst)
	ids := appendByICount(ts, nil, dst)
	if len(ids) > base {
		return ids[:base+1]
	}
	return ids
}

// FlushOnL2Miss implements Policy.
func (Stall) FlushOnL2Miss() bool { return false }

// Flush squashes the offending thread's younger instructions on an L2 miss
// and gates its fetch until the miss returns.
type Flush struct{}

// Name implements Policy.
func (Flush) Name() string { return "FLUSH" }

// Order implements Policy.
func (Flush) Order(ts []ThreadState, dst []int) []int {
	return appendByICount(ts, func(t ThreadState) bool { return t.OutstandingL2 == 0 }, dst)
}

// FlushOnL2Miss implements Policy.
func (Flush) FlushOnL2Miss() bool { return true }

// DG (data gating) stops fetching for threads with more than Threshold
// outstanding L1 data-cache misses.
type DG struct {
	// Threshold is the outstanding-miss count at which fetch gates;
	// 0 means gate on the first outstanding miss.
	Threshold int
}

// Name implements Policy.
func (DG) Name() string { return "DG" }

// Order implements Policy.
func (p DG) Order(ts []ThreadState, dst []int) []int {
	base := len(dst)
	ids := appendByICount(ts, func(t ThreadState) bool { return t.OutstandingL1 <= p.Threshold }, dst)
	if len(ids) > base {
		return ids
	}
	return leastLoaded(ts, ids[:base])
}

// FlushOnL2Miss implements Policy.
func (DG) FlushOnL2Miss() bool { return false }

// PDG (predictive data gating) gates on *predicted* outstanding L1 misses,
// reacting before the miss is detected.
type PDG struct {
	// Threshold as in DG, applied to predicted+resolved outstanding misses.
	Threshold int
}

// Name implements Policy.
func (PDG) Name() string { return "PDG" }

// Order implements Policy.
func (p PDG) Order(ts []ThreadState, dst []int) []int {
	base := len(dst)
	ids := appendByICount(ts, func(t ThreadState) bool {
		return t.PredictedL1+t.OutstandingL1 <= p.Threshold
	}, dst)
	if len(ids) > base {
		return ids
	}
	return leastLoaded(ts, ids[:base])
}

// FlushOnL2Miss implements Policy.
func (PDG) FlushOnL2Miss() bool { return false }

// DWarn demotes threads with outstanding data-cache misses to a lower fetch
// priority group instead of gating them.
type DWarn struct{}

// Name implements Policy.
func (DWarn) Name() string { return "DWarn" }

// Order implements Policy.
func (DWarn) Order(ts []ThreadState, dst []int) []int {
	dst = appendByICount(ts, func(t ThreadState) bool { return t.OutstandingL1 == 0 }, dst)
	return appendByICount(ts, func(t ThreadState) bool { return t.OutstandingL1 > 0 }, dst)
}

// FlushOnL2Miss implements Policy.
func (DWarn) FlushOnL2Miss() bool { return false }

// StallP is the paper's §5 proposed enhancement: STALL driven by an L2-miss
// predictor, gating the offending thread at fetch before the miss is
// discovered so fewer ACE bits enter the pipeline.
type StallP struct{}

// Name implements Policy.
func (StallP) Name() string { return "STALLP" }

// Order implements Policy.
func (StallP) Order(ts []ThreadState, dst []int) []int {
	base := len(dst)
	ids := appendByICount(ts, func(t ThreadState) bool {
		return t.OutstandingL2 == 0 && t.PredictedL2 == 0
	}, dst)
	if len(ids) > base {
		return ids
	}
	return leastLoaded(ts, ids[:base])
}

// FlushOnL2Miss implements Policy.
func (StallP) FlushOnL2Miss() bool { return false }

// Stateful marks a policy whose Order call mutates internal state. The
// core's fetch stage must then call Order every cycle — even cycles where
// no thread can fetch — or the mutation schedule (and with it the fetch
// interleaving) would depend on when the core chose to skip.
type Stateful interface {
	// OrderMutates is a marker; it carries no behavior.
	OrderMutates()
}

// RoundRobin is the original SMT fetch scheme (Tullsen et al., ISCA
// 1995): threads take strict turns regardless of pipeline state. It
// predates ICOUNT and serves as the historical baseline. Unlike the other
// policies it carries state (the turn counter), so use it by pointer and
// do not share one instance between machines.
type RoundRobin struct {
	turn int
}

// OrderMutates marks RoundRobin as Stateful: each Order call with two or
// more active threads advances the turn counter.
func (*RoundRobin) OrderMutates() {}

// Name implements Policy.
func (*RoundRobin) Name() string { return "RR" }

// Order implements Policy.
func (r *RoundRobin) Order(ts []ThreadState, dst []int) []int {
	base := len(dst)
	for i, t := range ts {
		if t.Active {
			dst = append(dst, i)
		}
	}
	ids := dst[base:]
	if len(ids) < 2 {
		return dst
	}
	rot := r.turn % len(ids)
	r.turn++
	// Rotate left by rot via three reversals, in place.
	reverseInts(ids[:rot])
	reverseInts(ids[rot:])
	reverseInts(ids)
	return dst
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// FlushOnL2Miss implements Policy.
func (*RoundRobin) FlushOnL2Miss() bool { return false }

// VAware is the paper's §5 thread-aware reliability proposal: fetch
// priority goes to the threads currently contributing the *least* ACE
// state to the shared structures, so high-vulnerability threads (whose
// instructions sit in the IQ/ROB accumulating exposure) are throttled
// while low-vulnerability threads keep the pipeline productive. Threads
// with outstanding L2 misses are gated as in STALL, since their ACE bits
// are exactly the long-residency kind.
type VAware struct{}

// Name implements Policy.
func (VAware) Name() string { return "VAware" }

// Order implements Policy.
func (VAware) Order(ts []ThreadState, dst []int) []int {
	base := len(dst)
	for i, t := range ts {
		if !t.Active || t.OutstandingL2 != 0 {
			continue
		}
		j := len(dst)
		dst = append(dst, i)
		for j > base {
			p := ts[dst[j-1]]
			if p.RecentACE < t.RecentACE ||
				(p.RecentACE == t.RecentACE && p.InFlight <= t.InFlight) {
				break
			}
			dst[j] = dst[j-1]
			j--
		}
		dst[j] = i
	}
	if len(dst) > base {
		return dst
	}
	return leastLoaded(ts, dst[:base])
}

// FlushOnL2Miss implements Policy.
func (VAware) FlushOnL2Miss() bool { return false }

// ByName returns the policy named name (case-sensitive, as printed by
// Name), or nil when unknown. DG/PDG use their default thresholds.
func ByName(name string) Policy {
	switch name {
	case "ICOUNT":
		return ICount{}
	case "STALL":
		return Stall{}
	case "FLUSH":
		return Flush{}
	case "DG":
		return DG{Threshold: 1}
	case "PDG":
		return PDG{Threshold: 1}
	case "DWarn":
		return DWarn{}
	case "STALLP":
		return StallP{}
	case "VAware":
		return VAware{}
	case "RR":
		return &RoundRobin{}
	}
	return nil
}

// All returns the paper's six policies in presentation order (Figure 6).
func All() []Policy {
	return []Policy{ICount{}, Stall{}, Flush{}, DG{Threshold: 1}, PDG{Threshold: 1}, DWarn{}}
}
